//! An integer-only tree virtual machine — the executable stand-in for
//! the paper's direct assembly implementation.
//!
//! We cannot JIT the emitted assembly text inside a portable library,
//! so trees are compiled to a tiny bytecode whose instructions map
//! one-to-one onto the machine instructions of Listing 5:
//! [`Instr::LoadWord`] ↔ `ldrsw`, [`Instr::Movz`]/[`Instr::Movk`] ↔
//! immediate materialization, [`Instr::EorSign`] ↔ `eor`,
//! [`Instr::Cmp`] ↔ `cmp`, [`Instr::BranchGt`]/[`Instr::BranchLt`] ↔
//! `b.gt`/`b.lt`, [`Instr::Ret`] ↔ the leaf's return. Executing a
//! program therefore performs *exactly* the instruction sequence the
//! assembly backend would, which is what the cost-model simulator in
//! `flint-sim` charges per machine profile.
//!
//! Three compilation variants cover the evaluation's comparison axes:
//!
//! * [`VmVariant::Flint`] — integer loads, integer compares (no float
//!   instruction in the program at all);
//! * [`VmVariant::NativeFloat`] — float load + float-constant load +
//!   `fcmp` (machines *with* an FPU running the naive trees);
//! * [`VmVariant::SoftFloat`] — float bits loaded as integers but
//!   compared by a software-float comparison call (machines *without*
//!   an FPU running naive trees).

use flint_core::PreparedThreshold;
use flint_forest::{DecisionTree, Node, NodeId, RandomForest};
use flint_softfloat::soft_le;

/// Register index (the VM has 4 integer and 4 float registers; the
/// generated code only ever uses two of each, like the listings).
pub type Reg = u8;

/// One VM instruction. Each variant corresponds to one machine
/// instruction of the respective backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Integer load of the feature word at `offset` (in words) from the
    /// feature vector — `ldrsw x, [base, #off]`.
    LoadWord {
        /// Destination integer register.
        dst: Reg,
        /// Feature index.
        offset: u32,
    },
    /// Float load of the feature at `offset` — `ldr s, [base, #off]`
    /// (requires an FPU).
    LoadFloat {
        /// Destination float register.
        dst: Reg,
        /// Feature index.
        offset: u32,
    },
    /// Materialize the low 16 bits of an immediate — `movz`.
    Movz {
        /// Destination integer register.
        dst: Reg,
        /// Low half of the immediate.
        imm: u16,
    },
    /// Materialize 16 bits of an immediate at a shifted position —
    /// `movk …, lsl <shift>` (shift 16 for `f32` keys; 16/32/48 for the
    /// four-part `f64` keys of the double precision backend).
    Movk {
        /// Destination integer register.
        dst: Reg,
        /// The 16-bit half/quarter of the immediate.
        imm: u16,
        /// Bit position (16, 32 or 48).
        shift: u8,
    },
    /// 64-bit integer load of the feature doubleword at `offset` — the
    /// `ldr x, [base, #off]` of the double precision backend.
    LoadDword {
        /// Destination integer register.
        dst: Reg,
        /// Feature index.
        offset: u32,
    },
    /// Load a float constant from the literal pool — `ldr s, =const`
    /// (data-memory access; requires an FPU).
    LoadFloatConst {
        /// Destination float register.
        dst: Reg,
        /// The constant.
        value: f32,
    },
    /// Load a double constant from the literal pool (double precision
    /// naive backend; requires an FPU).
    LoadDoubleConst {
        /// Destination float register.
        dst: Reg,
        /// The constant.
        value: f64,
    },
    /// Float load of the double at `offset` — `ldr d, [base, #off]`.
    LoadDouble {
        /// Destination float register.
        dst: Reg,
        /// Feature index.
        offset: u32,
    },
    /// Flip the sign bit of a 32-bit register — `eor w, w, #0x80000000`.
    EorSign {
        /// Register to flip.
        dst: Reg,
    },
    /// Flip bit 63 of a 64-bit register — `eor x, x, #1<<63`.
    EorSign64 {
        /// Register to flip.
        dst: Reg,
    },
    /// Signed 32-bit integer compare, sets flags — `cmp w, w`.
    Cmp {
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Signed 64-bit integer compare, sets flags — `cmp x, x`.
    Cmp64 {
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Software float comparison of two 64-bit registers holding f64
    /// patterns (double precision softfloat backend).
    SoftCmp64 {
        /// Left operand (bit pattern).
        a: Reg,
        /// Right operand (bit pattern).
        b: Reg,
    },
    /// Hardware float compare, sets flags — `fcmp` (requires an FPU).
    Fcmp {
        /// Left float operand.
        a: Reg,
        /// Right float operand.
        b: Reg,
    },
    /// Software float comparison of two integer registers holding float
    /// bit patterns; sets flags as if `fcmp` ran. Models a call into a
    /// softfloat runtime (`__aeabi_cfcmple` and friends).
    SoftCmp {
        /// Left operand (bit pattern).
        a: Reg,
        /// Right operand (bit pattern).
        b: Reg,
    },
    /// Branch to `target` when flags say "greater than" — `b.gt`.
    BranchGt {
        /// Absolute instruction index.
        target: u32,
    },
    /// Branch to `target` when flags say "less than" — `b.lt`.
    BranchLt {
        /// Absolute instruction index.
        target: u32,
    },
    /// Unconditional branch — `b`.
    Jump {
        /// Absolute instruction index.
        target: u32,
    },
    /// Return the class in the instruction — leaf epilogue.
    Ret {
        /// Predicted class.
        class: u32,
    },
}

/// Comparison idiom a program was compiled with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmVariant {
    /// FLInt: integer loads and compares only.
    Flint,
    /// Native float instructions (FPU machines, naive trees).
    NativeFloat,
    /// Software float comparison calls (FPU-less machines, naive trees).
    SoftFloat,
}

/// Per-instruction-kind execution counts of one program run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Integer feature loads (32-bit).
    pub load_word: u64,
    /// Integer feature loads (64-bit, double precision programs).
    pub load_dword: u64,
    /// Float feature loads.
    pub load_float: u64,
    /// Float constant loads (literal pool / data memory).
    pub load_float_const: u64,
    /// `movz` immediate materializations.
    pub movz: u64,
    /// `movk` immediate materializations.
    pub movk: u64,
    /// Sign-flip XORs.
    pub eor: u64,
    /// Integer compares.
    pub cmp_int: u64,
    /// Hardware float compares.
    pub cmp_float: u64,
    /// Software float comparison calls.
    pub soft_cmp: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Of those, how many were taken.
    pub branches_taken: u64,
    /// Unconditional jumps.
    pub jumps: u64,
    /// Returns.
    pub rets: u64,
}

impl ExecStats {
    /// Total instructions executed.
    pub fn total(&self) -> u64 {
        self.load_word
            + self.load_dword
            + self.load_float
            + self.load_float_const
            + self.movz
            + self.movk
            + self.eor
            + self.cmp_int
            + self.cmp_float
            + self.soft_cmp
            + self.branches
            + self.jumps
            + self.rets
    }

    /// Accumulates another run's counts.
    pub fn add(&mut self, other: &ExecStats) {
        self.load_word += other.load_word;
        self.load_dword += other.load_dword;
        self.load_float += other.load_float;
        self.load_float_const += other.load_float_const;
        self.movz += other.movz;
        self.movk += other.movk;
        self.eor += other.eor;
        self.cmp_int += other.cmp_int;
        self.cmp_float += other.cmp_float;
        self.soft_cmp += other.soft_cmp;
        self.branches += other.branches;
        self.branches_taken += other.branches_taken;
        self.jumps += other.jumps;
        self.rets += other.rets;
    }
}

/// Error raised by the VM interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmError {
    /// The program ran past its end without returning.
    FellOffEnd,
    /// A feature offset exceeded the feature vector.
    FeatureOutOfRange {
        /// The offending offset.
        offset: u32,
    },
    /// Instruction budget exhausted (cycle in a malformed program).
    BudgetExhausted,
}

impl core::fmt::Display for VmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::FellOffEnd => write!(f, "program ended without a return"),
            Self::FeatureOutOfRange { offset } => {
                write!(f, "feature offset {offset} outside the feature vector")
            }
            Self::BudgetExhausted => write!(f, "instruction budget exhausted (malformed program)"),
        }
    }
}

impl std::error::Error for VmError {}

/// A compiled tree program.
#[derive(Debug, Clone, PartialEq)]
pub struct VmProgram {
    instrs: Vec<Instr>,
    variant: VmVariant,
}

impl VmProgram {
    /// Compiles `tree` under the given comparison variant.
    ///
    /// The emitted instruction sequence per split node matches
    /// Listing 5: load, (flip,) materialize immediate, compare,
    /// conditional branch to the else block; leaves return.
    ///
    /// # Panics
    ///
    /// Panics if the tree contains NaN thresholds (prevented by tree
    /// validation).
    pub fn compile(tree: &DecisionTree, variant: VmVariant) -> Self {
        let mut instrs = Vec::new();
        compile_node(&mut instrs, tree, NodeId::ROOT, variant);
        Self { instrs, variant }
    }

    /// Compiles `tree` as a **double precision** program: 64-bit loads
    /// (`ldr x`), four-part immediate materialization (`movz` + three
    /// `movk`), bit-63 sign flips and 64-bit compares. Thresholds widen
    /// exactly from the trained `f32` values; run it with
    /// [`run_f64`](Self::run_f64).
    ///
    /// # Panics
    ///
    /// Panics if the tree contains NaN thresholds.
    pub fn compile_f64(tree: &DecisionTree, variant: VmVariant) -> Self {
        let mut instrs = Vec::new();
        compile_node_f64(&mut instrs, tree, NodeId::ROOT, variant);
        Self { instrs, variant }
    }

    /// The compiled instruction stream.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The comparison variant this program uses.
    pub fn variant(&self) -> VmVariant {
        self.variant
    }

    /// `true` if no instruction in the program needs an FPU.
    pub fn is_fpu_free(&self) -> bool {
        !self.instrs.iter().any(|i| {
            matches!(
                i,
                Instr::LoadFloat { .. } | Instr::LoadFloatConst { .. } | Instr::Fcmp { .. }
            )
        })
    }

    /// Executes a single precision program on `f32` features.
    ///
    /// # Errors
    ///
    /// [`VmError`] on malformed programs or out-of-range feature
    /// offsets. Programs produced by [`VmProgram::compile`] on
    /// validated trees with matching feature vectors never fail.
    pub fn run(&self, features: &[f32]) -> Result<(u32, ExecStats), VmError> {
        self.exec(FeatureBank::Single(features))
    }

    /// Executes a double precision program (from
    /// [`VmProgram::compile_f64`]) on `f64` features.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_f64(&self, features: &[f64]) -> Result<(u32, ExecStats), VmError> {
        self.exec(FeatureBank::Double(features))
    }

    fn exec(&self, features: FeatureBank<'_>) -> Result<(u32, ExecStats), VmError> {
        let mut stats = ExecStats::default();
        // Integer registers are raw 64-bit containers; 32-bit
        // instructions address their low words like `wN` views of `xN`.
        let mut int_regs = [0i64; 4];
        let mut float_regs = [0f64; 4];
        let mut flag_gt = false;
        let mut flag_lt = false;
        let mut pc = 0usize;
        let budget = self.instrs.len() as u64 * 4 + 16;
        let mut executed = 0u64;
        loop {
            if executed > budget {
                return Err(VmError::BudgetExhausted);
            }
            executed += 1;
            let instr = *self.instrs.get(pc).ok_or(VmError::FellOffEnd)?;
            pc += 1;
            match instr {
                Instr::LoadWord { dst, offset } => {
                    stats.load_word += 1;
                    int_regs[dst as usize] = i64::from(features.bits32(offset)?);
                }
                Instr::LoadDword { dst, offset } => {
                    stats.load_dword += 1;
                    int_regs[dst as usize] = features.bits64(offset)? as i64;
                }
                Instr::LoadFloat { dst, offset } => {
                    stats.load_float += 1;
                    float_regs[dst as usize] = f64::from(f32::from_bits(features.bits32(offset)?));
                }
                Instr::LoadDouble { dst, offset } => {
                    stats.load_float += 1;
                    float_regs[dst as usize] = f64::from_bits(features.bits64(offset)?);
                }
                Instr::Movz { dst, imm } => {
                    stats.movz += 1;
                    // movz zero-extends the 16-bit immediate.
                    int_regs[dst as usize] = i64::from(imm);
                }
                Instr::Movk { dst, imm, shift } => {
                    stats.movk += 1;
                    let mask = 0xffffu64 << shift;
                    let old = int_regs[dst as usize] as u64;
                    int_regs[dst as usize] = ((old & !mask) | (u64::from(imm) << shift)) as i64;
                }
                Instr::LoadFloatConst { dst, value } => {
                    stats.load_float_const += 1;
                    float_regs[dst as usize] = f64::from(value);
                }
                Instr::LoadDoubleConst { dst, value } => {
                    stats.load_float_const += 1;
                    float_regs[dst as usize] = value;
                }
                Instr::EorSign { dst } => {
                    stats.eor += 1;
                    // 32-bit eor on the low word.
                    int_regs[dst as usize] ^= 0x8000_0000;
                }
                Instr::EorSign64 { dst } => {
                    stats.eor += 1;
                    int_regs[dst as usize] ^= i64::MIN;
                }
                Instr::Cmp { a, b } => {
                    stats.cmp_int += 1;
                    let x = int_regs[a as usize] as u32 as i32;
                    let y = int_regs[b as usize] as u32 as i32;
                    flag_gt = x > y;
                    flag_lt = x < y;
                }
                Instr::Cmp64 { a, b } => {
                    stats.cmp_int += 1;
                    let (x, y) = (int_regs[a as usize], int_regs[b as usize]);
                    flag_gt = x > y;
                    flag_lt = x < y;
                }
                Instr::Fcmp { a, b } => {
                    stats.cmp_float += 1;
                    let (x, y) = (float_regs[a as usize], float_regs[b as usize]);
                    flag_gt = x > y;
                    flag_lt = x < y;
                }
                Instr::SoftCmp { a, b } => {
                    stats.soft_cmp += 1;
                    let x = f32::from_bits(int_regs[a as usize] as u32);
                    let y = f32::from_bits(int_regs[b as usize] as u32);
                    // Software comparison routine — integer-only inside.
                    let le = soft_le(x, y);
                    let eq = flint_softfloat::soft_eq(x, y);
                    flag_gt = !le;
                    flag_lt = le && !eq;
                }
                Instr::SoftCmp64 { a, b } => {
                    stats.soft_cmp += 1;
                    let x = f64::from_bits(int_regs[a as usize] as u64);
                    let y = f64::from_bits(int_regs[b as usize] as u64);
                    let le = soft_le(x, y);
                    let eq = flint_softfloat::soft_eq(x, y);
                    flag_gt = !le;
                    flag_lt = le && !eq;
                }
                Instr::BranchGt { target } => {
                    stats.branches += 1;
                    if flag_gt {
                        stats.branches_taken += 1;
                        pc = target as usize;
                    }
                }
                Instr::BranchLt { target } => {
                    stats.branches += 1;
                    if flag_lt {
                        stats.branches_taken += 1;
                        pc = target as usize;
                    }
                }
                Instr::Jump { target } => {
                    stats.jumps += 1;
                    pc = target as usize;
                }
                Instr::Ret { class } => {
                    stats.rets += 1;
                    return Ok((class, stats));
                }
            }
        }
    }
}

/// The feature vector a program executes against: `f32` rows for single
/// precision programs, `f64` rows for double precision ones.
#[derive(Debug, Clone, Copy)]
enum FeatureBank<'a> {
    Single(&'a [f32]),
    Double(&'a [f64]),
}

impl FeatureBank<'_> {
    /// 32-bit pattern of feature `offset` (single precision banks only;
    /// a double bank narrows exactly when the value is representable —
    /// programs never mix widths, so this path is single-bank only in
    /// practice and narrowing is a defensive fallback).
    fn bits32(self, offset: u32) -> Result<u32, VmError> {
        match self {
            FeatureBank::Single(f) => f
                .get(offset as usize)
                .map(|v| v.to_bits())
                .ok_or(VmError::FeatureOutOfRange { offset }),
            FeatureBank::Double(f) => f
                .get(offset as usize)
                .map(|v| (*v as f32).to_bits())
                .ok_or(VmError::FeatureOutOfRange { offset }),
        }
    }

    /// 64-bit pattern of feature `offset` (single banks widen exactly).
    fn bits64(self, offset: u32) -> Result<u64, VmError> {
        match self {
            FeatureBank::Single(f) => f
                .get(offset as usize)
                .map(|v| f64::from(*v).to_bits())
                .ok_or(VmError::FeatureOutOfRange { offset }),
            FeatureBank::Double(f) => f
                .get(offset as usize)
                .map(|v| v.to_bits())
                .ok_or(VmError::FeatureOutOfRange { offset }),
        }
    }
}

fn compile_node(instrs: &mut Vec<Instr>, tree: &DecisionTree, id: NodeId, variant: VmVariant) {
    match &tree.nodes()[id.index()] {
        Node::Leaf { class, .. } => instrs.push(Instr::Ret { class: *class }),
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            match variant {
                VmVariant::Flint => {
                    let prepared = PreparedThreshold::new(*threshold)
                        .expect("validated trees have no NaN thresholds");
                    let key = prepared.key() as u32;
                    instrs.push(Instr::LoadWord {
                        dst: 1,
                        offset: *feature,
                    });
                    if prepared.flips_sign() {
                        instrs.push(Instr::EorSign { dst: 1 });
                    }
                    instrs.push(Instr::Movz {
                        dst: 2,
                        imm: (key & 0xffff) as u16,
                    });
                    instrs.push(Instr::Movk {
                        dst: 2,
                        imm: (key >> 16) as u16,
                        shift: 16,
                    });
                    instrs.push(Instr::Cmp { a: 1, b: 2 });
                    let branch_slot = instrs.len();
                    // Placeholder target patched after the left subtree.
                    if prepared.flips_sign() {
                        instrs.push(Instr::BranchLt { target: 0 });
                    } else {
                        instrs.push(Instr::BranchGt { target: 0 });
                    }
                    compile_node(instrs, tree, *left, variant);
                    let else_target = instrs.len() as u32;
                    match &mut instrs[branch_slot] {
                        Instr::BranchGt { target } | Instr::BranchLt { target } => {
                            *target = else_target
                        }
                        _ => unreachable!("branch slot holds a branch"),
                    }
                    compile_node(instrs, tree, *right, variant);
                }
                VmVariant::NativeFloat => {
                    instrs.push(Instr::LoadFloat {
                        dst: 1,
                        offset: *feature,
                    });
                    instrs.push(Instr::LoadFloatConst {
                        dst: 2,
                        value: *threshold,
                    });
                    instrs.push(Instr::Fcmp { a: 1, b: 2 });
                    let branch_slot = instrs.len();
                    instrs.push(Instr::BranchGt { target: 0 });
                    compile_node(instrs, tree, *left, variant);
                    let else_target = instrs.len() as u32;
                    match &mut instrs[branch_slot] {
                        Instr::BranchGt { target } => *target = else_target,
                        _ => unreachable!("branch slot holds a branch"),
                    }
                    compile_node(instrs, tree, *right, variant);
                }
                VmVariant::SoftFloat => {
                    let bits = threshold.to_bits();
                    instrs.push(Instr::LoadWord {
                        dst: 1,
                        offset: *feature,
                    });
                    instrs.push(Instr::Movz {
                        dst: 2,
                        imm: (bits & 0xffff) as u16,
                    });
                    instrs.push(Instr::Movk {
                        dst: 2,
                        imm: (bits >> 16) as u16,
                        shift: 16,
                    });
                    instrs.push(Instr::SoftCmp { a: 1, b: 2 });
                    let branch_slot = instrs.len();
                    instrs.push(Instr::BranchGt { target: 0 });
                    compile_node(instrs, tree, *left, variant);
                    let else_target = instrs.len() as u32;
                    match &mut instrs[branch_slot] {
                        Instr::BranchGt { target } => *target = else_target,
                        _ => unreachable!("branch slot holds a branch"),
                    }
                    compile_node(instrs, tree, *right, variant);
                }
            }
        }
    }
}

fn compile_node_f64(instrs: &mut Vec<Instr>, tree: &DecisionTree, id: NodeId, variant: VmVariant) {
    match &tree.nodes()[id.index()] {
        Node::Leaf { class, .. } => instrs.push(Instr::Ret { class: *class }),
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            let wide = f64::from(*threshold);
            let emit_imm64 = |instrs: &mut Vec<Instr>, key: u64| {
                instrs.push(Instr::Movz {
                    dst: 2,
                    imm: (key & 0xffff) as u16,
                });
                for shift in [16u8, 32, 48] {
                    instrs.push(Instr::Movk {
                        dst: 2,
                        imm: ((key >> shift) & 0xffff) as u16,
                        shift,
                    });
                }
            };
            match variant {
                VmVariant::Flint => {
                    let prepared = PreparedThreshold::new(wide)
                        .expect("validated trees have no NaN thresholds");
                    instrs.push(Instr::LoadDword {
                        dst: 1,
                        offset: *feature,
                    });
                    if prepared.flips_sign() {
                        instrs.push(Instr::EorSign64 { dst: 1 });
                    }
                    emit_imm64(instrs, prepared.key() as u64);
                    instrs.push(Instr::Cmp64 { a: 1, b: 2 });
                    let branch_slot = instrs.len();
                    if prepared.flips_sign() {
                        instrs.push(Instr::BranchLt { target: 0 });
                    } else {
                        instrs.push(Instr::BranchGt { target: 0 });
                    }
                    compile_node_f64(instrs, tree, *left, variant);
                    let else_target = instrs.len() as u32;
                    match &mut instrs[branch_slot] {
                        Instr::BranchGt { target } | Instr::BranchLt { target } => {
                            *target = else_target
                        }
                        _ => unreachable!("branch slot holds a branch"),
                    }
                    compile_node_f64(instrs, tree, *right, variant);
                }
                VmVariant::NativeFloat => {
                    instrs.push(Instr::LoadDouble {
                        dst: 1,
                        offset: *feature,
                    });
                    instrs.push(Instr::LoadDoubleConst {
                        dst: 2,
                        value: wide,
                    });
                    instrs.push(Instr::Fcmp { a: 1, b: 2 });
                    let branch_slot = instrs.len();
                    instrs.push(Instr::BranchGt { target: 0 });
                    compile_node_f64(instrs, tree, *left, variant);
                    let else_target = instrs.len() as u32;
                    match &mut instrs[branch_slot] {
                        Instr::BranchGt { target } => *target = else_target,
                        _ => unreachable!("branch slot holds a branch"),
                    }
                    compile_node_f64(instrs, tree, *right, variant);
                }
                VmVariant::SoftFloat => {
                    instrs.push(Instr::LoadDword {
                        dst: 1,
                        offset: *feature,
                    });
                    emit_imm64(instrs, wide.to_bits());
                    instrs.push(Instr::SoftCmp64 { a: 1, b: 2 });
                    let branch_slot = instrs.len();
                    instrs.push(Instr::BranchGt { target: 0 });
                    compile_node_f64(instrs, tree, *left, variant);
                    let else_target = instrs.len() as u32;
                    match &mut instrs[branch_slot] {
                        Instr::BranchGt { target } => *target = else_target,
                        _ => unreachable!("branch slot holds a branch"),
                    }
                    compile_node_f64(instrs, tree, *right, variant);
                }
            }
        }
    }
}

/// A forest compiled to VM programs with majority-vote aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct VmForest {
    programs: Vec<VmProgram>,
    n_classes: usize,
}

impl VmForest {
    /// Compiles every tree of `forest` under `variant`.
    pub fn compile(forest: &RandomForest, variant: VmVariant) -> Self {
        Self {
            programs: forest
                .trees()
                .iter()
                .map(|t| VmProgram::compile(t, variant))
                .collect(),
            n_classes: forest.n_classes(),
        }
    }

    /// The per-tree programs.
    pub fn programs(&self) -> &[VmProgram] {
        &self.programs
    }

    /// Number of classes voted over.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Majority-vote prediction plus accumulated instruction counts.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError`] from any tree program.
    pub fn run(&self, features: &[f32]) -> Result<(u32, ExecStats), VmError> {
        let mut votes = vec![0u32; self.n_classes];
        let mut stats = ExecStats::default();
        for p in &self.programs {
            let (class, s) = p.run(features)?;
            votes[class as usize] += 1;
            stats.add(&s);
        }
        let class = flint_forest::metrics::majority_vote(&votes);
        Ok((class, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_forest::example_tree;

    #[test]
    fn flint_program_matches_reference_tree() {
        let tree = example_tree();
        let program = VmProgram::compile(&tree, VmVariant::Flint);
        for input in [
            [0.0f32, -2.0],
            [0.0, 0.0],
            [1.0, 0.0],
            [0.5, -1.25],
            [-1.0, -0.0],
        ] {
            let (class, _) = program.run(&input).expect("runs");
            assert_eq!(class, tree.predict(&input), "{input:?}");
        }
    }

    #[test]
    fn all_variants_agree() {
        let tree = example_tree();
        let flint = VmProgram::compile(&tree, VmVariant::Flint);
        let float = VmProgram::compile(&tree, VmVariant::NativeFloat);
        let soft = VmProgram::compile(&tree, VmVariant::SoftFloat);
        for input in [[0.3f32, -1.3], [0.6, 2.0], [0.5, -1.25], [-7.0, 0.0]] {
            let want = tree.predict(&input);
            assert_eq!(flint.run(&input).expect("runs").0, want);
            assert_eq!(float.run(&input).expect("runs").0, want);
            assert_eq!(soft.run(&input).expect("runs").0, want);
        }
    }

    #[test]
    fn flint_programs_are_fpu_free() {
        let tree = example_tree();
        assert!(VmProgram::compile(&tree, VmVariant::Flint).is_fpu_free());
        assert!(VmProgram::compile(&tree, VmVariant::SoftFloat).is_fpu_free());
        assert!(!VmProgram::compile(&tree, VmVariant::NativeFloat).is_fpu_free());
    }

    #[test]
    fn instruction_counts_match_listing_shape() {
        let tree = example_tree();
        let program = VmProgram::compile(&tree, VmVariant::Flint);
        // Path [1.0, 0.0]: root (positive split, no eor) then right leaf:
        // ldrsw + movz + movk + cmp + b.gt(taken) + ret = 6 instructions.
        let (_, stats) = program.run(&[1.0, 0.0]).expect("runs");
        assert_eq!(stats.load_word, 1);
        assert_eq!(stats.movz, 1);
        assert_eq!(stats.movk, 1);
        assert_eq!(stats.cmp_int, 1);
        assert_eq!(stats.branches, 1);
        assert_eq!(stats.branches_taken, 1);
        assert_eq!(stats.eor, 0);
        assert_eq!(stats.rets, 1);
        assert_eq!(stats.total(), 6);
        // Path [0.0, 0.0]: root (no eor) + inner (-1.25 split: eor) then
        // leaf — the eor fires exactly once.
        let (_, stats) = program.run(&[0.0, 0.0]).expect("runs");
        assert_eq!(stats.eor, 1);
        assert_eq!(stats.cmp_int, 2);
    }

    #[test]
    fn native_variant_counts_float_instructions() {
        let tree = example_tree();
        let program = VmProgram::compile(&tree, VmVariant::NativeFloat);
        let (_, stats) = program.run(&[1.0, 0.0]).expect("runs");
        assert_eq!(stats.load_float, 1);
        assert_eq!(stats.load_float_const, 1);
        assert_eq!(stats.cmp_float, 1);
        assert_eq!(stats.cmp_int, 0);
    }

    #[test]
    fn soft_variant_counts_softcmp() {
        let tree = example_tree();
        let program = VmProgram::compile(&tree, VmVariant::SoftFloat);
        let (_, stats) = program.run(&[1.0, 0.0]).expect("runs");
        assert_eq!(stats.soft_cmp, 1);
        assert_eq!(stats.cmp_float, 0);
    }

    #[test]
    fn feature_out_of_range_is_reported() {
        let tree = example_tree();
        let program = VmProgram::compile(&tree, VmVariant::Flint);
        // [0.0] goes left at the root into the node testing feature 1,
        // which is outside the truncated feature vector.
        assert_eq!(
            program.run(&[0.0]).unwrap_err(),
            VmError::FeatureOutOfRange { offset: 1 }
        );
    }

    #[test]
    fn f64_programs_match_reference_on_all_variants() {
        let tree = example_tree();
        let flint = VmProgram::compile_f64(&tree, VmVariant::Flint);
        let float = VmProgram::compile_f64(&tree, VmVariant::NativeFloat);
        let soft = VmProgram::compile_f64(&tree, VmVariant::SoftFloat);
        assert!(flint.is_fpu_free());
        assert!(soft.is_fpu_free());
        for input in [
            [0.3f32, -1.3],
            [0.6, 2.0],
            [0.5, -1.25],
            [-7.0, 0.0],
            [0.5, -0.0],
        ] {
            let wide: Vec<f64> = input.iter().map(|&v| f64::from(v)).collect();
            let want = tree.predict(&input);
            assert_eq!(flint.run_f64(&wide).expect("runs").0, want, "{input:?}");
            assert_eq!(float.run_f64(&wide).expect("runs").0, want, "{input:?}");
            assert_eq!(soft.run_f64(&wide).expect("runs").0, want, "{input:?}");
        }
    }

    #[test]
    fn f64_flint_uses_four_part_immediates() {
        let tree = example_tree();
        let program = VmProgram::compile_f64(&tree, VmVariant::Flint);
        // Path [1.0, 0.0]: one split — ldr x + movz + 3×movk + cmp +
        // branch + ret = 8 instructions.
        let (_, stats) = program.run_f64(&[1.0, 0.0]).expect("runs");
        assert_eq!(stats.load_dword, 1);
        assert_eq!(stats.load_word, 0);
        assert_eq!(stats.movz, 1);
        assert_eq!(stats.movk, 3);
        assert_eq!(stats.cmp_int, 1);
        assert_eq!(stats.total(), 8);
    }

    #[test]
    fn f64_inputs_between_f32_values() {
        // A double strictly between adjacent f32 values must route per
        // exact f64 comparison against the widened threshold.
        let tree = example_tree(); // root split 0.5
        let program = VmProgram::compile_f64(&tree, VmVariant::Flint);
        let above = 0.5f64 + f64::EPSILON;
        assert_eq!(program.run_f64(&[above, 0.0]).expect("runs").0, 2);
        let below = 0.5f64 - f64::EPSILON;
        assert_ne!(program.run_f64(&[below, 0.0]).expect("runs").0, 2);
    }

    #[test]
    fn forest_vm_majority_vote() {
        use flint_data::synth::SynthSpec;
        use flint_forest::{ForestConfig, RandomForest};
        let data = SynthSpec::new(150, 4, 3).seed(6).generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(5, 6)).expect("trainable");
        let vm = VmForest::compile(&forest, VmVariant::Flint);
        assert_eq!(vm.programs().len(), 5);
        // Agreement with the majority vote every engine implements.
        for i in 0..data.n_samples() {
            let (class, stats) = vm.run(data.sample(i)).expect("runs");
            assert_eq!(class, forest.predict_majority(data.sample(i)));
            assert!(stats.total() > 0);
        }
    }
}
