//! Assembly text emission — the paper's Listing 5 and its X86
//! counterpart.
//!
//! The FLInt assembly implementation loads the feature word with an
//! integer load, materializes the split immediate with `movz`/`movk`
//! (ARMv8) or `mov` (X86), compares with the integer `cmp`, and
//! branches with `b.gt`/`jg` to the else block. Negative splits insert
//! one `eor`/`xor` to flip the loaded word's sign bit and compare in
//! the reversed direction (`b.lt`/`jl` against the folded immediate).
//!
//! The emitted text is the artifact the paper describes; the executable
//! stand-in with identical instruction sequencing is [`crate::vm`].

use flint_core::PreparedThreshold;
use flint_forest::{DecisionTree, Node, NodeId};
use std::fmt::Write;

/// Target instruction set for the textual emitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsmTarget {
    /// ARMv8 AArch64 (`ldrsw`/`movz`/`movk`/`cmp`/`b.gt`), Listing 5.
    Armv8,
    /// X86-64 AT&T-flavoured (`movl`/`cmpl`/`jg`).
    X86,
}

/// Emits the body of one tree as assembly text for `target`.
///
/// Feature words are addressed relative to the feature-vector base
/// register (`%1` on ARMv8 as in the paper's inline-asm listing, `%rdi`
/// on X86). Labels follow the paper's `rtittlab<node><tree>` pattern.
pub fn emit_tree_asm(tree: &DecisionTree, tree_index: usize, target: AsmTarget) -> String {
    let mut out = String::new();
    let mut label_counter = 0usize;
    emit_node(
        &mut out,
        tree,
        NodeId::ROOT,
        tree_index,
        target,
        &mut label_counter,
    );
    out
}

fn emit_node(
    out: &mut String,
    tree: &DecisionTree,
    id: NodeId,
    tree_index: usize,
    target: AsmTarget,
    label_counter: &mut usize,
) {
    match &tree.nodes()[id.index()] {
        Node::Leaf { class, .. } => match target {
            AsmTarget::Armv8 => {
                let _ = writeln!(out, "    mov w0, #{class}");
                let _ = writeln!(out, "    b rtitt_done_{tree_index}");
            }
            AsmTarget::X86 => {
                let _ = writeln!(out, "    movl ${class}, %eax");
                let _ = writeln!(out, "    jmp rtitt_done_{tree_index}");
            }
        },
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            let prepared =
                PreparedThreshold::new(*threshold).expect("validated trees have no NaN thresholds");
            let key = prepared.key() as u32;
            let label = format!("rtittlab{}_{tree_index}", *label_counter);
            *label_counter += 1;
            let byte_offset = feature * 4;
            match target {
                AsmTarget::Armv8 => {
                    let _ = writeln!(out, "    ldrsw x1, [%1, {byte_offset}]");
                    if prepared.flips_sign() {
                        // Listing 5 variant for negative splits: flip the
                        // loaded sign bit, compare reversed.
                        let _ = writeln!(out, "    eor w1, w1, #0x80000000");
                    }
                    let _ = writeln!(out, "    movz x2, #0x{:04x}", key & 0xffff);
                    let _ = writeln!(out, "    movk x2, #0x{:04x}, lsl 16", key >> 16);
                    let _ = writeln!(out, "    cmp w1, w2");
                    if prepared.flips_sign() {
                        // go right when (x ^ M) < key, i.e. key > flipped
                        let _ = writeln!(out, "    b.lt {label}");
                    } else {
                        let _ = writeln!(out, "    b.gt {label}");
                    }
                }
                AsmTarget::X86 => {
                    let _ = writeln!(out, "    movl {byte_offset}(%rdi), %ecx");
                    if prepared.flips_sign() {
                        let _ = writeln!(out, "    xorl $0x80000000, %ecx");
                    }
                    let _ = writeln!(out, "    cmpl $0x{key:08x}, %ecx");
                    if prepared.flips_sign() {
                        let _ = writeln!(out, "    jl {label}");
                    } else {
                        let _ = writeln!(out, "    jg {label}");
                    }
                }
            }
            emit_node(out, tree, *left, tree_index, target, label_counter);
            let _ = writeln!(out, "{label}:");
            emit_node(out, tree, *right, tree_index, target, label_counter);
        }
    }
}

/// Emits the body of one tree as **double precision** assembly: 64-bit
/// integer loads (`ldr x`/`movq`), four-part immediate materialization
/// on ARMv8 (`movz` + three `movk`), `movabsq` on X86, and the bit-63
/// sign flip for negative splits. Thresholds widen exactly from the
/// trained `f32` values.
pub fn emit_tree_asm_f64(tree: &DecisionTree, tree_index: usize, target: AsmTarget) -> String {
    let mut out = String::new();
    let mut label_counter = 0usize;
    emit_node_f64(
        &mut out,
        tree,
        NodeId::ROOT,
        tree_index,
        target,
        &mut label_counter,
    );
    out
}

fn emit_node_f64(
    out: &mut String,
    tree: &DecisionTree,
    id: NodeId,
    tree_index: usize,
    target: AsmTarget,
    label_counter: &mut usize,
) {
    match &tree.nodes()[id.index()] {
        Node::Leaf { class, .. } => match target {
            AsmTarget::Armv8 => {
                let _ = writeln!(out, "    mov w0, #{class}");
                let _ = writeln!(out, "    b rtitt_done_{tree_index}");
            }
            AsmTarget::X86 => {
                let _ = writeln!(out, "    movl ${class}, %eax");
                let _ = writeln!(out, "    jmp rtitt_done_{tree_index}");
            }
        },
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            let prepared = PreparedThreshold::new(f64::from(*threshold))
                .expect("validated trees have no NaN thresholds");
            let key = prepared.key() as u64;
            let label = format!("rtittlab{}_{tree_index}", *label_counter);
            *label_counter += 1;
            let byte_offset = feature * 8;
            match target {
                AsmTarget::Armv8 => {
                    let _ = writeln!(out, "    ldr x1, [%1, {byte_offset}]");
                    if prepared.flips_sign() {
                        let _ = writeln!(out, "    eor x1, x1, #0x8000000000000000");
                    }
                    let _ = writeln!(out, "    movz x2, #0x{:04x}", key & 0xffff);
                    for (i, shift) in [(1u32, 16u32), (2, 32), (3, 48)] {
                        let half = (key >> (16 * i)) & 0xffff;
                        let _ = writeln!(out, "    movk x2, #0x{half:04x}, lsl {shift}");
                    }
                    let _ = writeln!(out, "    cmp x1, x2");
                    let _ = writeln!(
                        out,
                        "    {} {label}",
                        if prepared.flips_sign() {
                            "b.lt"
                        } else {
                            "b.gt"
                        }
                    );
                }
                AsmTarget::X86 => {
                    let _ = writeln!(out, "    movq {byte_offset}(%rdi), %rcx");
                    if prepared.flips_sign() {
                        let _ = writeln!(out, "    movabsq $0x8000000000000000, %rdx");
                        let _ = writeln!(out, "    xorq %rdx, %rcx");
                    }
                    let _ = writeln!(out, "    movabsq $0x{key:016x}, %rdx");
                    let _ = writeln!(out, "    cmpq %rdx, %rcx");
                    let _ = writeln!(
                        out,
                        "    {} {label}",
                        if prepared.flips_sign() { "jl" } else { "jg" }
                    );
                }
            }
            emit_node_f64(out, tree, *left, tree_index, target, label_counter);
            let _ = writeln!(out, "{label}:");
            emit_node_f64(out, tree, *right, tree_index, target, label_counter);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_forest::example_tree;

    #[test]
    fn armv8_uses_listing5_mnemonics() {
        let tree = example_tree();
        let asm = emit_tree_asm(&tree, 0, AsmTarget::Armv8);
        for mnemonic in ["ldrsw", "movz", "movk", "cmp", "b.gt"] {
            assert!(asm.contains(mnemonic), "missing {mnemonic}:\n{asm}");
        }
        // The -1.25 split must flip via eor and branch reversed.
        assert!(asm.contains("eor w1, w1, #0x80000000"), "{asm}");
        assert!(asm.contains("b.lt"), "{asm}");
    }

    #[test]
    fn x86_variant_uses_integer_ops() {
        let tree = example_tree();
        let asm = emit_tree_asm(&tree, 0, AsmTarget::X86);
        for mnemonic in ["movl", "cmpl", "jg"] {
            assert!(asm.contains(mnemonic), "missing {mnemonic}:\n{asm}");
        }
        assert!(asm.contains("xorl $0x80000000"));
        // No floating point instruction anywhere.
        for forbidden in ["ss", "fld", "fcmp", "comis"] {
            assert!(
                !asm.lines().any(|l| l.trim().starts_with(forbidden)),
                "float instruction {forbidden} leaked:\n{asm}"
            );
        }
    }

    #[test]
    fn immediates_split_into_movz_movk_halves() {
        let tree = example_tree(); // threshold 0.5 = 0x3f000000
        let asm = emit_tree_asm(&tree, 0, AsmTarget::Armv8);
        assert!(asm.contains("movz x2, #0x0000"), "{asm}");
        assert!(asm.contains("movk x2, #0x3f00, lsl 16"), "{asm}");
    }

    #[test]
    fn every_label_is_defined_once_and_branched_to() {
        let tree = example_tree();
        for target in [AsmTarget::Armv8, AsmTarget::X86] {
            let asm = emit_tree_asm(&tree, 7, target);
            for line in asm.lines() {
                if let Some(label) = line.strip_suffix(':') {
                    let uses = asm
                        .lines()
                        .filter(|l| l.contains(label) && !l.ends_with(':'))
                        .count();
                    assert_eq!(uses, 1, "label {label} in {target:?}");
                }
            }
            // One leaf return per leaf.
            let rets = asm.lines().filter(|l| l.contains("rtitt_done_7")).count();
            assert_eq!(rets, tree.n_leaves());
        }
    }

    #[test]
    fn byte_offsets_are_feature_times_four() {
        let tree = example_tree(); // features 0 and 1
        let asm = emit_tree_asm(&tree, 0, AsmTarget::Armv8);
        assert!(asm.contains("[%1, 0]"), "{asm}");
        assert!(asm.contains("[%1, 4]"), "{asm}");
    }

    #[test]
    fn f64_armv8_materializes_four_immediate_halves() {
        let tree = example_tree();
        let asm = emit_tree_asm_f64(&tree, 0, AsmTarget::Armv8);
        // One movz + three movk per split node.
        let splits = tree.n_nodes() - tree.n_leaves();
        assert_eq!(asm.matches("movz").count(), splits);
        assert_eq!(asm.matches("movk").count(), 3 * splits);
        assert!(asm.contains("lsl 48"), "{asm}");
        assert!(asm.contains("cmp x1, x2"), "{asm}");
        // 8-byte feature stride.
        assert!(asm.contains("[%1, 8]"), "{asm}");
        // Negative split flips bit 63.
        assert!(asm.contains("#0x8000000000000000"), "{asm}");
    }

    #[test]
    fn f64_x86_uses_movabsq_and_cmpq() {
        let tree = example_tree();
        let asm = emit_tree_asm_f64(&tree, 0, AsmTarget::X86);
        assert!(asm.contains("movabsq"), "{asm}");
        assert!(asm.contains("cmpq"), "{asm}");
        assert!(asm.contains("movq 8(%rdi)"), "{asm}");
    }

    #[test]
    fn f64_immediate_is_widened_threshold_pattern() {
        let tree = example_tree(); // positive split 0.5 -> f64 0x3fe0...
        let asm = emit_tree_asm_f64(&tree, 0, AsmTarget::X86);
        let want = 0.5f64.to_bits();
        assert!(
            asm.contains(&format!("$0x{want:016x}")),
            "expected {want:#018x} in\n{asm}"
        );
    }
}
