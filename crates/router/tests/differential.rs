//! The router differential suite: for **every** engine in the registry
//! and shard counts {1, 2, 5} (ragged spans included — 5 trees split
//! 3/2 and 1/1/1/1/1), the sharded fan-out answer must be
//! bit-identical to the single-node answer. This is the tentpole
//! guarantee: a router in front of N shards is indistinguishable from
//! one server over the whole forest — except when a shard fails, in
//! which case the answer is a *visible* busy/error, never a
//! partial-quorum class.

#![cfg(target_os = "linux")]

use flint_data::synth::SynthSpec;
use flint_exec::{EngineBuilder, EngineKind, Predictor};
use flint_forest::metrics::majority_vote;
use flint_forest::{plan_spans, ForestConfig, RandomForest};
use flint_router::RouterServer;
use flint_serve::{BatchPolicy, EpollServer, EventLoopConfig, MetricsSnapshot};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;

/// The registry this suite believes it is covering. A new engine that
/// lands without being added here fails the guard below — sharded
/// inference correctness is part of an engine's definition of done.
const REQUIRED: [&str; 21] = [
    "naive",
    "cags",
    "flint",
    "cags-flint",
    "softfloat",
    "naive-blocked",
    "cags-blocked",
    "flint-blocked",
    "cags-flint-blocked",
    "softfloat-blocked",
    "quickscorer",
    "quickscorer-float",
    "vm-flint",
    "vm-float",
    "vm-softfloat",
    "simd",
    "simd-float",
    "jit",
    "jit-float",
    "simd-f16",
    "simd-f16-float",
];

fn fixture() -> (flint_data::Dataset, RandomForest) {
    let data = SynthSpec::new(48, 4, 3)
        .cluster_std(1.0)
        .negative_fraction(0.5)
        .seed(33)
        .generate();
    let forest = RandomForest::fit(&data, &ForestConfig::grid(5, 6)).expect("trainable");
    (data, forest)
}

fn build_engine(
    forest: &RandomForest,
    data: &flint_data::Dataset,
    kind: EngineKind,
) -> Box<dyn Predictor> {
    EngineBuilder::new(forest)
        .profile_data(data)
        .build(kind)
        .expect("every registry engine builds on the fixture forest")
}

/// One shard: an epoll server over a tree span, running the engine
/// under test. `max_batch` 1 keeps batch fills deterministic.
fn spawn_shard(
    forest: &RandomForest,
    data: &flint_data::Dataset,
    kind: EngineKind,
    span: (usize, usize),
    config: EventLoopConfig,
) -> (SocketAddr, JoinHandle<MetricsSnapshot>) {
    let part = forest.tree_span(span.0, span.1);
    let engine = build_engine(&part, data, kind);
    let server = EpollServer::bind_with_config(
        "127.0.0.1:0",
        engine,
        BatchPolicy::default().max_batch(1).workers(1),
        config,
    )
    .expect("shard binds loopback");
    let addr = server.local_addr();
    let runner = std::thread::spawn(move || server.run().expect("shard serves"));
    (addr, runner)
}

fn shutdown_peer(addr: SocketAddr) {
    if let Ok(mut s) = TcpStream::connect(addr) {
        let _ = s.write_all(b"shutdown\n");
        let _ = s.read(&mut [0u8; 256]);
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    line: String,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connects");
        stream.set_nodelay(true).expect("nodelay");
        Self {
            reader: BufReader::new(stream.try_clone().expect("clones")),
            writer: stream,
            line: String::new(),
        }
    }

    fn roundtrip(&mut self, request: &str) -> &str {
        writeln!(self.writer, "{request}").expect("writes");
        self.line.clear();
        self.reader.read_line(&mut self.line).expect("reads");
        self.line.trim_end()
    }
}

#[test]
fn registry_is_fully_enumerated() {
    let names: Vec<&str> = EngineKind::ALL.iter().map(|k| k.name()).collect();
    assert_eq!(
        names.len(),
        REQUIRED.len(),
        "engine registry changed; extend the router differential suite: {names:?}"
    );
    for name in REQUIRED {
        assert!(
            names.contains(&name),
            "required engine {name} missing from registry {names:?}"
        );
    }
}

/// The flagship matrix: every engine × shard counts {1, 2, 5}. The
/// router's class and votes answers must equal the same engine's
/// single-node answers on every row — bit-identical histograms, not
/// just agreeing classes.
#[test]
fn every_engine_shards_identically_at_1_2_and_5_shards() {
    let (data, forest) = fixture();
    for kind in EngineKind::ALL {
        // Single-node reference: the full forest under this engine.
        let reference = build_engine(&forest, &data, kind);
        for n_shards in [1usize, 2, 5] {
            let spans = plan_spans(forest.n_trees(), n_shards);
            let shards: Vec<_> = spans
                .iter()
                .map(|&s| spawn_shard(&forest, &data, kind, s, EventLoopConfig::default()))
                .collect();
            let shard_addrs: Vec<SocketAddr> = shards.iter().map(|(a, _)| *a).collect();
            let router = RouterServer::bind("127.0.0.1:0", shard_addrs).expect("router binds");
            let addr = router.local_addr();
            let runner = std::thread::spawn(move || router.run().expect("routes"));

            let mut client = Client::connect(addr);
            for i in (0..48).step_by(6) {
                let row = data.sample(i);
                let text: Vec<String> = row.iter().map(f32::to_string).collect();
                let votes = reference.predict_votes(row);
                let class = majority_vote(&votes);
                let got = client.roundtrip(&text.join(",")).to_owned();
                assert!(
                    got.starts_with(&format!("{{\"class\":{class},\"engine\":\"router\"")),
                    "{} x{n_shards} row {i}: {got}",
                    kind.name()
                );
                let expected_votes = flint_forest::votes::render_votes(&votes);
                let got = client
                    .roundtrip(&format!("votes:{}", text.join(",")))
                    .to_owned();
                assert!(
                    got.starts_with(&format!(
                        "{{\"votes\":{expected_votes},\"engine\":\"router\""
                    )),
                    "{} x{n_shards} row {i}: {got}",
                    kind.name()
                );
            }
            assert!(client.roundtrip("shutdown").contains("shutting down"));
            runner.join().expect("router thread");
            for (addr, runner) in shards {
                shutdown_peer(addr);
                runner.join().expect("shard thread");
            }
        }
    }
}

/// A shard that sheds (zero in-flight window) surfaces as a visible
/// `busy` naming the shard at the router — the fan-out never merges a
/// quorum missing that shard's histogram.
#[test]
fn shard_shed_propagates_as_visible_busy() {
    let (data, forest) = fixture();
    let kind = EngineKind::parse("flint-blocked").expect("registered");
    let spans = plan_spans(forest.n_trees(), 2);
    let (a0, r0) = spawn_shard(&forest, &data, kind, spans[0], EventLoopConfig::default());
    // The second shard admits connections but sheds every prediction.
    let (a1, r1) = spawn_shard(
        &forest,
        &data,
        kind,
        spans[1],
        EventLoopConfig::default().max_inflight(0),
    );
    let router = RouterServer::bind("127.0.0.1:0", vec![a0, a1]).expect("router binds");
    let addr = router.local_addr();
    let runner = std::thread::spawn(move || router.run().expect("routes"));

    let mut client = Client::connect(addr);
    let text: Vec<String> = data.sample(0).iter().map(f32::to_string).collect();
    let got = client.roundtrip(&text.join(",")).to_owned();
    assert!(got.contains("\"busy\":true"), "{got}");
    assert!(got.contains(&format!("shard {a1}")), "{got}");
    assert!(got.contains("max-inflight 0"), "{got}");
    let stats = client.roundtrip("stats").to_owned();
    assert!(stats.contains("\"shed\":1"), "{stats}");

    assert!(client.roundtrip("shutdown").contains("shutting down"));
    runner.join().expect("router thread");
    for (addr, runner) in [(a0, r0), (a1, r1)] {
        shutdown_peer(addr);
        runner.join().expect("shard thread");
    }
}

/// Malformed and oversized client lines answer locally (the shards
/// never see them), and a pipelined mix of good and bad lines comes
/// back in request order.
#[test]
fn malformed_oversized_and_good_lines_interleave_in_order() {
    let (data, forest) = fixture();
    let kind = EngineKind::parse("flint").expect("registered");
    let spans = plan_spans(forest.n_trees(), 2);
    let shards: Vec<_> = spans
        .iter()
        .map(|&s| spawn_shard(&forest, &data, kind, s, EventLoopConfig::default()))
        .collect();
    let shard_addrs: Vec<SocketAddr> = shards.iter().map(|(a, _)| *a).collect();
    let router = RouterServer::bind("127.0.0.1:0", shard_addrs).expect("router binds");
    let addr = router.local_addr();
    let runner = std::thread::spawn(move || router.run().expect("routes"));

    let reference = build_engine(&forest, &data, kind);
    let row = data.sample(7);
    let text: Vec<String> = row.iter().map(f32::to_string).collect();
    let class = majority_vote(&reference.predict_votes(row));

    // One write, five lines: good, malformed, good, oversized, good.
    let stream = TcpStream::connect(addr).expect("connects");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clones"));
    let mut writer = stream;
    let good = text.join(",");
    let oversized = "9,".repeat(flint_serve::MAX_LINE_BYTES);
    let burst = format!("{good}\nwhat,even,is,this\n{good}\n{oversized}\n{good}\n");
    writer.write_all(burst.as_bytes()).expect("writes");
    let mut line = String::new();
    let expectations: [&dyn Fn(&str) -> bool; 5] = [
        &|l: &str| l.starts_with(&format!("{{\"class\":{class},")),
        &|l: &str| l.contains("\"error\"") && l.contains("cannot parse feature"),
        &|l: &str| l.starts_with(&format!("{{\"class\":{class},")),
        &|l: &str| l.contains("exceeds"),
        &|l: &str| l.starts_with(&format!("{{\"class\":{class},")),
    ];
    for (i, check) in expectations.iter().enumerate() {
        line.clear();
        reader.read_line(&mut line).expect("reads");
        assert!(check(line.trim_end()), "response {i} wrong: {line}");
    }

    writeln!(writer, "shutdown").expect("writes");
    line.clear();
    reader.read_line(&mut line).expect("reads");
    assert!(line.contains("shutting down"), "{line}");
    runner.join().expect("router thread");
    for (addr, runner) in shards {
        shutdown_peer(addr);
        runner.join().expect("shard thread");
    }
}

/// Killing a shard mid-stream under pipelined load: every outstanding
/// request resolves (busy or the exact class), never a wrong class,
/// and the client connection survives.
#[test]
fn mid_stream_shard_death_never_yields_a_wrong_class() {
    let (data, forest) = fixture();
    let kind = EngineKind::parse("flint-blocked").expect("registered");
    let spans = plan_spans(forest.n_trees(), 2);
    let (a0, r0) = spawn_shard(&forest, &data, kind, spans[0], EventLoopConfig::default());
    let (a1, r1) = spawn_shard(&forest, &data, kind, spans[1], EventLoopConfig::default());
    let router = RouterServer::bind("127.0.0.1:0", vec![a0, a1]).expect("router binds");
    let addr = router.local_addr();
    let runner = std::thread::spawn(move || router.run().expect("routes"));

    let reference = build_engine(&forest, &data, kind);
    let mut client = Client::connect(addr);
    let row = data.sample(3);
    let text: Vec<String> = row.iter().map(f32::to_string).collect();
    let class = majority_vote(&reference.predict_votes(row));
    // Prime the path, then kill shard 1 and hammer: every response is
    // either the exact class (sent before the death landed) or a
    // visible busy — and once the router notices, it stays busy.
    let got = client.roundtrip(&text.join(",")).to_owned();
    assert!(got.starts_with(&format!("{{\"class\":{class},")), "{got}");
    shutdown_peer(a1);
    r1.join().expect("shard thread");
    let mut saw_busy = false;
    for i in 0..200 {
        let got = client.roundtrip(&text.join(",")).to_owned();
        let exact = got.starts_with(&format!("{{\"class\":{class},"));
        let busy = got.contains("\"busy\":true");
        assert!(
            exact || busy,
            "iteration {i}: wrong or silent answer: {got}"
        );
        if busy {
            saw_busy = true;
        }
        if saw_busy {
            assert!(busy, "iteration {i}: merged after the shard died: {got}");
        }
        if saw_busy && i > 20 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(saw_busy, "shard death never became visible");

    assert!(client.roundtrip("shutdown").contains("shutting down"));
    runner.join().expect("router thread");
    shutdown_peer(a0);
    r0.join().expect("shard thread");
}
