//! # flint-router — the sharded fan-out/merge inference tier
//!
//! One forest, too hot for one box: split the ensemble into contiguous
//! tree spans ([`flint_forest::RandomForest::tree_span`], planned by
//! [`flint_forest::plan_spans`]), serve each span from its own
//! `flint serve` shard, and put this router in front. The router
//! speaks the exact same newline-delimited protocol as a single
//! server, so clients cannot tell the difference — except that each
//! request now costs one fan-out to every shard and a histogram merge
//! on the way back.
//!
//! **Why histograms, not classes.** Majority voting does not compose:
//! merging per-shard *winner classes* can disagree with the
//! single-node answer (two shards' runner-up can outvote both
//! winners). Merging per-shard *vote histograms* is exact — vote
//! counts are additive over disjoint tree spans — so the router asks
//! every shard for its `votes:` partial and applies the one canonical
//! tie-break ([`flint_forest::metrics::majority_vote`]) to the sum.
//! The distributed answer is bit-identical to
//! `RandomForest::predict_majority` on the whole forest, for every
//! engine in the registry.
//!
//! **Failure surface.** A merge over a partial quorum would be a
//! *wrong answer with a confident face*, so it never happens: if any
//! shard is down at fan-out time, sheds the request, or dies
//! mid-request, the client gets a visible `busy`/`error` line naming
//! the shard. The connection stays usable; retry when the shard map
//! heals.
//!
//! **Control plane**, on the same connection as data: `health` (role,
//! shard-up count, draining flag), `shardmap` (get) and
//! `shardmap set a:1,b:2` (replace; in-flight requests fail visibly),
//! `drain`/`undrain` (stop/resume admitting data requests while
//! control keeps answering), `stats` (the standard snapshot with a
//! `"shards"` block spliced in), `shutdown`.
//!
//! The data plane is one epoll thread reusing `flint-serve`'s
//! connection layer verbatim: [`flint_serve::Conn`] for clients
//! (framing, ordered response slots, write backpressure) and
//! [`flint_serve::LineMachine`] for framing shard responses. No new
//! async machinery, no second protocol.
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod router;

pub use router::{RouterServer, DEFAULT_ROUTER_ADDR};
