//! The fan-out/merge event loop: one epoll thread fronting N forest
//! shards.
//!
//! Clients are driven by [`flint_serve::Conn`] — the same framing,
//! ordered response slots and write-backpressure machinery as a shard's
//! own event loop. Shard links are thinner: a nonblocking stream, a
//! bare [`LineMachine`] framing *responses*, and a FIFO of request ids,
//! because the shard protocol answers strictly in request order per
//! connection (the ordered-slot invariant the serve loop enforces).
//! That FIFO discipline is what lets the router match replies to
//! requests without an id field on the wire.
//!
//! A data request is admitted only when **every** shard link is up;
//! each shard receives the row as a `votes:` line, and the reply
//! histograms are summed with [`merge_votes`] before the one canonical
//! [`majority_vote`] tie-break. Any shard shedding, disagreeing on
//! arity, or dying mid-request fails that request *visibly* (`busy` /
//! `error` naming the shard) — a partial quorum is never merged,
//! because a majority over half the forest is a wrong answer that
//! looks like a right one.

use epoll::{Events, Interest, Poller};
use flint_forest::metrics::majority_vote;
use flint_forest::votes::{merge_votes, parse_votes};
use flint_serve::{
    render_busy, render_error, render_votes, Conn, EventLoopConfig, FramedLine, LineMachine,
    MetricsSnapshot, Request, ServeMetrics, WireEvent,
};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

/// Poll token of the accept listener.
const LISTENER: u64 = 0;
/// First token handed to a connection or shard link (monotonic, never
/// reused, so a stale readiness report can never reach a newer peer).
const FIRST_TOKEN: u64 = 2;
/// Upper bound on one `epoll_wait` sleep: reconnect and shutdown
/// bookkeeping runs at least this often even with no I/O.
const POLL_TICK: Duration = Duration::from_millis(100);
/// Bytes per `read` call on a shard link.
const READ_CHUNK: usize = 4096;
/// Reads taken from one shard link per readiness report; level-
/// triggered epoll re-reports leftovers.
const READ_BURSTS: usize = 16;
/// Drained-prefix size past which a shard link's write buffer is
/// compacted (same hygiene as the serve loop's client buffers).
const COMPACT_WRITE_BUFFER: usize = 4096;
/// How long a failed shard link stays down before the next blocking
/// connect attempt.
const RECONNECT_INTERVAL: Duration = Duration::from_millis(500);

/// Default listen address of `flint route` (one above the serve
/// default, so a router and a shard co-habit a dev box).
pub const DEFAULT_ROUTER_ADDR: &str = "127.0.0.1:7979";

/// The sharded fan-out/merge inference tier: accepts clients on the
/// standard line protocol and answers each predict/votes request by
/// merging per-shard vote histograms from N upstream `flint serve`
/// shards.
///
/// ```no_run
/// use flint_router::RouterServer;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let shards = vec!["127.0.0.1:7878".parse()?, "127.0.0.1:7879".parse()?];
/// let router = RouterServer::bind("127.0.0.1:7979", shards)?;
/// println!("routing on {}", router.local_addr());
/// let final_stats = router.run()?; // until a client sends `shutdown`
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RouterServer {
    listener: TcpListener,
    local_addr: SocketAddr,
    shard_addrs: Vec<SocketAddr>,
    config: EventLoopConfig,
}

impl RouterServer {
    /// Binds `addr` in front of `shards` with the default
    /// [`EventLoopConfig`].
    ///
    /// # Errors
    ///
    /// `InvalidInput` on an empty shard list; any [`std::io::Error`]
    /// from binding the listener.
    pub fn bind(addr: &str, shards: Vec<SocketAddr>) -> std::io::Result<Self> {
        Self::bind_with_config(addr, shards, EventLoopConfig::default())
    }

    /// Binds `addr` with explicit admission-control limits.
    /// `max_inflight` caps requests fanned out and unanswered across
    /// all clients; `max_pending_per_conn` and `max_write_buffer` mean
    /// exactly what they mean on a shard.
    ///
    /// # Errors
    ///
    /// `InvalidInput` on an empty shard list; any [`std::io::Error`]
    /// from binding the listener.
    pub fn bind_with_config(
        addr: &str,
        shards: Vec<SocketAddr>,
        config: EventLoopConfig,
    ) -> std::io::Result<Self> {
        if shards.is_empty() {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "router needs at least one shard address",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            local_addr,
            shard_addrs: shards,
            config,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The admission-control limits in force.
    pub fn config(&self) -> EventLoopConfig {
        self.config
    }

    /// Runs the router until a client sends `shutdown`, then drains
    /// every in-flight fan-out, flushes and closes every client, and
    /// returns the final metrics snapshot.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from the poller or listener (including
    /// `Unsupported` on non-Linux targets); per-connection and
    /// per-shard I/O errors only end that peer.
    pub fn run(self) -> std::io::Result<MetricsSnapshot> {
        let RouterServer {
            listener,
            local_addr: _,
            shard_addrs,
            config,
        } = self;
        let poller = Poller::new()?;
        listener.set_nonblocking(true)?;
        poller.add(listener.as_raw_fd(), LISTENER, Interest::READ)?;
        let now = Instant::now();
        let mut state = RouterLoop {
            listener,
            poller,
            metrics: ServeMetrics::default(),
            cfg: config,
            clients: HashMap::new(),
            shards: shard_addrs
                .into_iter()
                .map(|addr| Shard {
                    addr,
                    link: None,
                    next_attempt: now,
                })
                .collect(),
            shard_tokens: HashMap::new(),
            pending: HashMap::new(),
            next_token: FIRST_TOKEN,
            next_req: 0,
            stopping: false,
            draining: false,
        };
        state.connect_down_shards();

        let mut events = Events::with_capacity(1024);
        let mut accepting = true;
        let mut client_events: Vec<(u64, WireEvent)> = Vec::new();
        let mut ready_shards: Vec<usize> = Vec::new();
        loop {
            state.poller.wait(&mut events, Some(POLL_TICK))?;
            // Copy the reports out so `events` is free for the next
            // wait and the borrow checker is free for the state.
            let ready: Vec<epoll::Event> = events.iter().collect();
            client_events.clear();
            ready_shards.clear();
            for event in ready {
                match event.token {
                    LISTENER => state.accept_clients()?,
                    token => {
                        if let Some(&idx) = state.shard_tokens.get(&token) {
                            if event.readable || event.closed {
                                ready_shards.push(idx);
                            }
                            // Writability is handled by the flush pass.
                        } else if let Some(conn) = state.clients.get_mut(&token) {
                            if event.readable || event.closed {
                                for ev in conn.read_wire_events(&state.metrics) {
                                    client_events.push((token, ev));
                                }
                            }
                        }
                    }
                }
            }
            // Client requests fan out first (appending to shard write
            // buffers), then shard replies land, then the flush pass
            // pushes the fresh fan-outs — one tick, no extra wakeups.
            for (token, ev) in client_events.drain(..) {
                state.handle_client_event(token, ev);
            }
            for idx in ready_shards.drain(..) {
                state.shard_readable(idx);
            }
            state.connect_down_shards();
            state.flush_shards();

            if state.stopping && accepting {
                accepting = false;
                let _ = state.poller.delete(state.listener.as_raw_fd());
            }
            state.pump_clients();
            if state.stopping && state.clients.is_empty() {
                break;
            }
        }
        Ok(state.metrics.snapshot())
    }
}

/// One configured upstream shard: its address and, when up, the live
/// link. `next_attempt` rate-limits reconnects after a failure.
#[derive(Debug)]
struct Shard {
    addr: SocketAddr,
    link: Option<ShardLink>,
    next_attempt: Instant,
}

/// One live upstream connection. Replies arrive strictly in request
/// order (the shard's ordered-slot guarantee), so `fifo` — request ids
/// in send order — is the whole reply-matching story.
#[derive(Debug)]
struct ShardLink {
    stream: TcpStream,
    token: u64,
    /// Frames shard *response* lines; no request parsing on this side.
    lines: LineMachine,
    /// Bytes waiting for the shard socket; `out_pos..` is unsent.
    out: Vec<u8>,
    out_pos: usize,
    /// Request ids of fanned-out rows this shard has not answered yet.
    fifo: VecDeque<u64>,
    want_write: bool,
}

impl ShardLink {
    /// Flushes as much of the out buffer as the socket takes, compacts
    /// the drained prefix and updates write interest. Returns true when
    /// the link died.
    fn flush(&mut self, poller: &Poller) -> bool {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return true,
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        } else if self.out_pos >= COMPACT_WRITE_BUFFER {
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        let want_write = self.out_pos < self.out.len();
        if want_write != self.want_write {
            self.want_write = want_write;
            let _ = poller.modify(
                self.stream.as_raw_fd(),
                self.token,
                Interest {
                    readable: true,
                    writable: want_write,
                },
            );
        }
        false
    }
}

/// One fanned-out request waiting for its shard histograms.
#[derive(Debug)]
struct Pending {
    /// Token of the client connection that owns the reserved slot.
    client: u64,
    /// The reserved response-slot sequence number on that connection.
    seq: u64,
    /// `votes:` requests get the merged histogram back; plain requests
    /// get the majority class of the merged histogram.
    wants_votes: bool,
    /// Running histogram sum; empty until the first shard answers.
    votes: Vec<u32>,
    /// Shards that have not answered yet.
    awaiting: usize,
    enqueued: Instant,
}

/// One parsed shard response line.
enum ShardReply {
    /// A vote histogram partial.
    Votes(Vec<u32>),
    /// The shard shed the request (`"busy":true`); reason without the
    /// `busy: ` prefix.
    Shed(String),
    /// Any other error line.
    Failed(String),
}

/// The mutable state of one running router. Methods take `&mut self`
/// and rely on field-disjoint borrows (clients vs. shards vs. poller).
#[derive(Debug)]
struct RouterLoop {
    listener: TcpListener,
    poller: Poller,
    metrics: ServeMetrics,
    cfg: EventLoopConfig,
    clients: HashMap<u64, Conn>,
    shards: Vec<Shard>,
    /// Poll token → index into `shards` for live links.
    shard_tokens: HashMap<u64, usize>,
    /// Request id → fan-out bookkeeping. A request failed early (shard
    /// death, shed) is removed here; its straggler replies are
    /// recognised by their absence and skipped.
    pending: HashMap<u64, Pending>,
    next_token: u64,
    next_req: u64,
    stopping: bool,
    draining: bool,
}

impl RouterLoop {
    /// Drains the accept queue; same admission shape as a shard's own
    /// accept path (over-cap and shutting-down connections get one
    /// `busy` line and are closed).
    fn accept_clients(&mut self) -> std::io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    if self.stopping || self.clients.len() >= self.cfg.max_conns {
                        self.metrics.record_shed();
                        let reason = if self.stopping {
                            "router shutting down".to_owned()
                        } else {
                            format!("connection limit {} reached", self.cfg.max_conns)
                        };
                        let mut line = render_busy(&reason);
                        line.push('\n');
                        let _ = stream.set_nodelay(true);
                        let _ = stream.write_all(line.as_bytes());
                        continue; // drop closes it
                    }
                    stream.set_nonblocking(true)?;
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    self.poller.add(stream.as_raw_fd(), token, Interest::READ)?;
                    self.metrics.record_connect();
                    self.clients.insert(token, Conn::new(stream));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Ok(()),
            }
        }
    }

    /// Appends an immediately-answered response line to a client.
    fn respond(&mut self, token: u64, line: String) {
        if let Some(conn) = self.clients.get_mut(&token) {
            conn.push_response(line);
        }
    }

    /// Dispatches one parsed client line: control verbs answer from
    /// router state, data requests fan out to every shard.
    fn handle_client_event(&mut self, token: u64, event: WireEvent) {
        match event {
            WireEvent::Request(Request::Predict(row)) => self.handle_request(token, row, false),
            WireEvent::Request(Request::Votes(row)) => self.handle_request(token, row, true),
            WireEvent::Request(Request::Stats) => {
                let line = self
                    .metrics
                    .snapshot()
                    .to_json_with_shards(&self.shard_map_json());
                self.respond(token, line);
            }
            WireEvent::Request(Request::Health) => {
                let up = self.shards.iter().filter(|s| s.link.is_some()).count();
                let ok = up == self.shards.len();
                let line = format!(
                    "{{\"ok\":{ok},\"role\":\"router\",\"shards_up\":{up},\"shards\":{},\"draining\":{}}}",
                    self.shards.len(),
                    self.draining
                );
                self.respond(token, line);
            }
            WireEvent::Request(Request::ShardMap) => {
                let line = format!("{{\"shards\":{}}}", self.shard_map_json());
                self.respond(token, line);
            }
            WireEvent::Request(Request::ShardMapSet(addrs)) => {
                self.replace_shard_map(token, addrs);
            }
            WireEvent::Request(Request::Drain) => {
                self.draining = true;
                self.respond(token, "{\"ok\":\"draining\"}".to_owned());
            }
            WireEvent::Request(Request::Undrain) => {
                self.draining = false;
                self.respond(token, "{\"ok\":\"accepting\"}".to_owned());
            }
            WireEvent::Request(Request::Shutdown) => {
                self.stopping = true;
                self.respond(token, "{\"ok\":\"shutting down\"}".to_owned());
            }
            WireEvent::Invalid(e) => self.respond(token, render_error(&e.to_string())),
            WireEvent::Oversized { limit } => {
                self.respond(
                    token,
                    render_error(&format!("request line exceeds {limit} bytes")),
                );
            }
        }
    }

    /// Admits one data request and fans it out, or sheds it with a
    /// visible `busy`. The all-shards-up check runs *before* any bytes
    /// are queued: a request is either fanned to every shard or to
    /// none.
    fn handle_request(&mut self, token: u64, row: Vec<f32>, wants_votes: bool) {
        let Some(pending_on_conn) = self.clients.get(&token).map(Conn::pending) else {
            return;
        };
        if self.draining || self.stopping {
            self.metrics.record_shed();
            self.respond(token, render_busy("router draining"));
            return;
        }
        if pending_on_conn >= self.cfg.max_pending_per_conn {
            self.metrics.record_shed();
            self.respond(
                token,
                render_busy(&format!(
                    "connection pending cap {} reached",
                    self.cfg.max_pending_per_conn
                )),
            );
            return;
        }
        if self.pending.len() >= self.cfg.max_inflight {
            self.metrics.record_shed();
            self.respond(
                token,
                render_busy(&format!("max-inflight {} reached", self.cfg.max_inflight)),
            );
            return;
        }
        if let Some(down) = self.shards.iter().find(|s| s.link.is_none()) {
            self.metrics.record_shed();
            self.respond(token, render_busy(&format!("shard {} down", down.addr)));
            return;
        }
        self.metrics.record_request();
        let seq = self
            .clients
            .get_mut(&token)
            .expect("admitted client exists")
            .reserve_slot();
        let req_id = self.next_req;
        self.next_req += 1;
        self.pending.insert(
            req_id,
            Pending {
                client: token,
                seq,
                wants_votes,
                votes: Vec::new(),
                awaiting: self.shards.len(),
                enqueued: Instant::now(),
            },
        );
        // f32's Display is the shortest round-trip form, so the shard
        // parses back the identical bits the client sent.
        let mut line = String::from("votes:");
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&v.to_string());
        }
        line.push('\n');
        for shard in &mut self.shards {
            let link = shard.link.as_mut().expect("all shards checked up");
            link.out.extend_from_slice(line.as_bytes());
            link.fifo.push_back(req_id);
        }
    }

    /// Reads one ready shard link, frames complete response lines and
    /// applies each to the request at the front of the link's FIFO.
    /// Any framing or ordering violation kills the link (and fails its
    /// in-flight requests visibly) rather than risking a misattributed
    /// reply.
    fn shard_readable(&mut self, idx: usize) {
        let Some(link) = self.shards[idx].link.as_mut() else {
            return;
        };
        let mut buf = [0u8; READ_CHUNK];
        let mut frames: Vec<Option<Vec<u8>>> = Vec::new();
        let mut dead = false;
        for _ in 0..READ_BURSTS {
            match link.stream.read(&mut buf) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => link.lines.receive(&buf[..n], |frame| {
                    frames.push(match frame {
                        FramedLine::Line(line) => Some(line.to_vec()),
                        FramedLine::Oversized { .. } => None,
                    })
                }),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        let addr = self.shards[idx].addr;
        for frame in frames {
            let Some(line) = frame else {
                // An oversized response line: the link is not speaking
                // our protocol.
                dead = true;
                break;
            };
            let Some(req_id) = self.shards[idx]
                .link
                .as_mut()
                .and_then(|l| l.fifo.pop_front())
            else {
                // A reply with no outstanding request is a protocol
                // violation; FIFO matching is no longer trustworthy.
                dead = true;
                break;
            };
            let reply = parse_shard_reply(&String::from_utf8_lossy(&line));
            self.apply_shard_reply(req_id, addr, reply);
        }
        if dead {
            self.fail_shard(idx);
        }
    }

    /// Folds one shard's reply into its pending fan-out. The first
    /// failure (shed, error, arity mismatch) finalizes the request
    /// immediately; straggler replies from other shards find no
    /// pending entry and are skipped — their FIFO positions were
    /// already consumed, so matching stays aligned.
    fn apply_shard_reply(&mut self, req_id: u64, addr: SocketAddr, reply: ShardReply) {
        let Some(mut p) = self.pending.remove(&req_id) else {
            return;
        };
        match reply {
            ShardReply::Votes(votes) => {
                if votes.is_empty() {
                    self.finalize(
                        p,
                        render_error(&format!("shard {addr} returned an empty histogram")),
                    );
                    return;
                }
                if p.votes.is_empty() {
                    p.votes = votes;
                } else if p.votes.len() == votes.len() {
                    merge_votes(&mut p.votes, &votes);
                } else {
                    self.finalize(
                        p,
                        render_error(&format!("shard {addr} histogram arity disagrees")),
                    );
                    return;
                }
                p.awaiting -= 1;
                if p.awaiting > 0 {
                    self.pending.insert(req_id, p);
                    return;
                }
                let n_shards = self.shards.len();
                let line = if p.wants_votes {
                    render_votes(&p.votes, "router", n_shards)
                } else {
                    format!(
                        "{{\"class\":{},\"engine\":\"router\",\"batch\":{n_shards}}}",
                        majority_vote(&p.votes)
                    )
                };
                self.finalize(p, line);
            }
            ShardReply::Shed(reason) => {
                self.metrics.record_shed();
                self.finalize(p, render_busy(&format!("shard {addr}: {reason}")));
            }
            ShardReply::Failed(reason) => {
                self.finalize(p, render_error(&format!("shard {addr}: {reason}")));
            }
        }
    }

    /// Delivers the final response line into the client's reserved
    /// slot (the client may already be gone; the latency still
    /// happened).
    fn finalize(&mut self, p: Pending, line: String) {
        self.metrics.record_latency(p.enqueued.elapsed());
        if let Some(conn) = self.clients.get_mut(&p.client) {
            conn.fill_slot(p.seq, line);
        }
    }

    /// Tears down one shard link: every request still in its FIFO that
    /// is still pending fails with a visible `busy` naming the shard —
    /// never a silent drop, never a partial-quorum merge.
    fn fail_shard(&mut self, idx: usize) {
        let addr = self.shards[idx].addr;
        if let Some(link) = self.shards[idx].link.take() {
            self.shard_tokens.remove(&link.token);
            let _ = self.poller.delete(link.stream.as_raw_fd());
            for req_id in link.fifo {
                if let Some(p) = self.pending.remove(&req_id) {
                    self.metrics.record_shed();
                    self.finalize(p, render_busy(&format!("shard {addr} died mid-request")));
                }
            }
        }
        self.shards[idx].next_attempt = Instant::now() + RECONNECT_INTERVAL;
    }

    /// Dials every down shard whose backoff has elapsed. Connects are
    /// blocking (loopback/LAN peers fail fast with ECONNREFUSED); a
    /// failure just pushes the next attempt out.
    fn connect_down_shards(&mut self) {
        let now = Instant::now();
        for idx in 0..self.shards.len() {
            if self.shards[idx].link.is_some() || now < self.shards[idx].next_attempt {
                continue;
            }
            self.connect_shard(idx);
        }
    }

    /// One connect attempt for one shard.
    fn connect_shard(&mut self, idx: usize) {
        let addr = self.shards[idx].addr;
        let backoff = Instant::now() + RECONNECT_INTERVAL;
        let Ok(stream) = TcpStream::connect(addr) else {
            self.shards[idx].next_attempt = backoff;
            return;
        };
        if stream.set_nonblocking(true).is_err() {
            self.shards[idx].next_attempt = backoff;
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .add(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            self.shards[idx].next_attempt = backoff;
            return;
        }
        self.shard_tokens.insert(token, idx);
        self.shards[idx].link = Some(ShardLink {
            stream,
            token,
            lines: LineMachine::new(),
            out: Vec::new(),
            out_pos: 0,
            fifo: VecDeque::new(),
            want_write: false,
        });
    }

    /// Flushes every live shard link; a dead one fails over.
    fn flush_shards(&mut self) {
        for idx in 0..self.shards.len() {
            let dead = match self.shards[idx].link.as_mut() {
                Some(link) => link.flush(&self.poller),
                None => false,
            };
            if dead {
                self.fail_shard(idx);
            }
        }
    }

    /// Pumps every client: answered slot prefixes flush out, finished
    /// or dead connections close. Runs every tick so idle and stopping
    /// connections drain without a readiness report.
    fn pump_clients(&mut self) {
        let tokens: Vec<u64> = self.clients.keys().copied().collect();
        for token in tokens {
            let Some(conn) = self.clients.get_mut(&token) else {
                continue;
            };
            if conn.pump(&self.poller, token, &self.metrics, &self.cfg, self.stopping) {
                let conn = self.clients.remove(&token).expect("live connection");
                let _ = self.poller.delete(conn.stream.as_raw_fd());
                self.metrics.record_disconnect();
            }
        }
    }

    /// The shard map as a JSON array (spliced into `stats`, returned
    /// by `shardmap`).
    fn shard_map_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let inflight = s.link.as_ref().map_or(0, |l| l.fifo.len());
            out.push_str(&format!(
                "{{\"addr\":\"{}\",\"up\":{},\"inflight\":{inflight}}}",
                s.addr,
                s.link.is_some()
            ));
        }
        out.push(']');
        out
    }

    /// `shardmap set a,b`: validates the new addresses, fails every
    /// in-flight request visibly (the span layout is changing under
    /// it), drops all links and dials the new map.
    fn replace_shard_map(&mut self, token: u64, addrs: Vec<String>) {
        let mut parsed: Vec<SocketAddr> = Vec::with_capacity(addrs.len());
        for a in &addrs {
            match a.parse() {
                Ok(sa) => parsed.push(sa),
                Err(_) => {
                    self.respond(
                        token,
                        render_error(&format!("shardmap set: invalid shard address `{a}`")),
                    );
                    return;
                }
            }
        }
        let inflight: Vec<u64> = self.pending.keys().copied().collect();
        for req_id in inflight {
            if let Some(p) = self.pending.remove(&req_id) {
                self.metrics.record_shed();
                self.finalize(p, render_busy("shard map replaced mid-request"));
            }
        }
        for shard in &mut self.shards {
            if let Some(link) = shard.link.take() {
                self.shard_tokens.remove(&link.token);
                let _ = self.poller.delete(link.stream.as_raw_fd());
            }
        }
        let now = Instant::now();
        self.shards = parsed
            .into_iter()
            .map(|addr| Shard {
                addr,
                link: None,
                next_attempt: now,
            })
            .collect();
        self.connect_down_shards();
        let line = format!("{{\"shards\":{}}}", self.shard_map_json());
        self.respond(token, line);
    }
}

/// Extracts the message of an `{"error":"..."}` line (unescaping is
/// skipped: the router re-escapes when it re-renders).
fn extract_error(line: &str) -> String {
    let Some(start) = line.find("\"error\":\"") else {
        return line.trim().to_owned();
    };
    let rest = &line[start + "\"error\":\"".len()..];
    let mut out = String::new();
    let mut escaped = false;
    for c in rest.chars() {
        match c {
            _ if escaped => {
                out.push(c);
                escaped = false;
            }
            '\\' => escaped = true,
            '"' => return out,
            c => out.push(c),
        }
    }
    out
}

/// Classifies one shard response line.
fn parse_shard_reply(line: &str) -> ShardReply {
    if line.contains("\"busy\":true") {
        let reason = extract_error(line);
        let reason = reason.strip_prefix("busy: ").unwrap_or(&reason).to_owned();
        return ShardReply::Shed(reason);
    }
    if let Some(start) = line.find("\"votes\":[") {
        let array = &line[start + "\"votes\":".len()..];
        // Vote histograms are flat integer arrays: the first `]`
        // closes it.
        if let Some(end) = array.find(']') {
            return match parse_votes(&array[..=end]) {
                Ok(votes) => ShardReply::Votes(votes),
                Err(e) => ShardReply::Failed(format!("unparseable votes reply: {e}")),
            };
        }
    }
    ShardReply::Failed(extract_error(line))
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use flint_data::synth::SynthSpec;
    use flint_exec::{EngineBuilder, EngineKind};
    use flint_forest::{ForestConfig, RandomForest};
    use flint_serve::{BatchPolicy, EpollServer};
    use std::io::{BufRead, BufReader};
    use std::thread::JoinHandle;

    fn forest_and_data() -> (RandomForest, flint_data::Dataset) {
        let data = SynthSpec::new(90, 4, 3).seed(5).generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(4, 6)).expect("trainable");
        (forest, data)
    }

    /// Spawns one `flint serve`-equivalent epoll shard over a tree
    /// span, returning its address and runner thread.
    fn spawn_shard(
        forest: &RandomForest,
        span: (usize, usize),
    ) -> (SocketAddr, JoinHandle<MetricsSnapshot>) {
        let part = forest.tree_span(span.0, span.1);
        let engine = EngineBuilder::new(&part)
            .build(EngineKind::parse("flint-blocked").expect("registered"))
            .expect("builds");
        let server = EpollServer::bind("127.0.0.1:0", engine, BatchPolicy::default().workers(1))
            .expect("binds loopback");
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || server.run().expect("shard serves"));
        (addr, runner)
    }

    fn shutdown_peer(addr: SocketAddr) {
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.write_all(b"shutdown\n");
            let _ = s.read(&mut [0u8; 256]);
        }
    }

    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
        line: String,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Self {
            let stream = TcpStream::connect(addr).expect("connects");
            stream.set_nodelay(true).expect("nodelay");
            Self {
                reader: BufReader::new(stream.try_clone().expect("clones")),
                writer: stream,
                line: String::new(),
            }
        }

        fn roundtrip(&mut self, request: &str) -> &str {
            writeln!(self.writer, "{request}").expect("writes");
            self.line.clear();
            self.reader.read_line(&mut self.line).expect("reads");
            self.line.trim_end()
        }
    }

    #[test]
    fn router_merges_shard_histograms_bit_identically() {
        let (forest, data) = forest_and_data();
        let spans = forest.plan_spans(2);
        let shards: Vec<_> = spans.iter().map(|&s| spawn_shard(&forest, s)).collect();
        let shard_addrs: Vec<SocketAddr> = shards.iter().map(|(a, _)| *a).collect();
        let router = RouterServer::bind("127.0.0.1:0", shard_addrs.clone()).expect("router binds");
        let addr = router.local_addr();
        let runner = std::thread::spawn(move || router.run().expect("routes"));

        let mut client = Client::connect(addr);
        for i in 0..12 {
            let row: Vec<String> = data.sample(i).iter().map(f32::to_string).collect();
            let expected_class = forest.predict_majority(data.sample(i));
            let got = client.roundtrip(&row.join(","));
            assert!(
                got.starts_with(&format!(
                    "{{\"class\":{expected_class},\"engine\":\"router\""
                )),
                "sample {i}: {got}"
            );
            let expected_votes =
                flint_forest::votes::render_votes(&forest.predict_votes(data.sample(i)));
            let got = client.roundtrip(&format!("votes:{}", row.join(",")));
            assert!(
                got.starts_with(&format!(
                    "{{\"votes\":{expected_votes},\"engine\":\"router\""
                )),
                "sample {i}: {got}"
            );
        }
        // Control plane sanity on the same connection.
        let health = client.roundtrip("health").to_owned();
        assert!(
            health.contains("\"ok\":true") && health.contains("\"shards_up\":2"),
            "{health}"
        );
        let map = client.roundtrip("shardmap").to_owned();
        assert!(
            map.contains(&format!("\"addr\":\"{}\"", shard_addrs[0])),
            "{map}"
        );
        let stats = client.roundtrip("stats").to_owned();
        assert!(stats.contains("\"requests\":24"), "{stats}");
        assert!(stats.contains("\"shards\":["), "{stats}");

        assert!(client.roundtrip("shutdown").contains("shutting down"));
        let snapshot = runner.join().expect("router thread");
        assert_eq!(snapshot.requests, 24);
        assert_eq!(snapshot.connections, 0);
        for (addr, runner) in shards {
            shutdown_peer(addr);
            runner.join().expect("shard thread");
        }
    }

    #[test]
    fn router_with_a_down_shard_answers_busy_not_wrong() {
        let (forest, data) = forest_and_data();
        let (up_addr, up_runner) = spawn_shard(&forest, (0, 2));
        // A bound-then-dropped listener: guaranteed-refused port.
        let down_addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("binds");
            l.local_addr().expect("addr")
        };
        let router =
            RouterServer::bind("127.0.0.1:0", vec![up_addr, down_addr]).expect("router binds");
        let addr = router.local_addr();
        let runner = std::thread::spawn(move || router.run().expect("routes"));

        let mut client = Client::connect(addr);
        let row: Vec<String> = data.sample(0).iter().map(f32::to_string).collect();
        let got = client.roundtrip(&row.join(",")).to_owned();
        assert!(got.contains("\"busy\":true"), "{got}");
        assert!(got.contains(&format!("shard {down_addr} down")), "{got}");
        let health = client.roundtrip("health").to_owned();
        assert!(health.contains("\"ok\":false"), "{health}");
        assert!(health.contains("\"shards_up\":1"), "{health}");

        assert!(client.roundtrip("shutdown").contains("shutting down"));
        runner.join().expect("router thread");
        shutdown_peer(up_addr);
        up_runner.join().expect("shard thread");
    }

    #[test]
    fn drain_sheds_data_but_keeps_answering_control() {
        let (forest, data) = forest_and_data();
        let (shard_addr, shard_runner) = spawn_shard(&forest, (0, 4));
        let router = RouterServer::bind("127.0.0.1:0", vec![shard_addr]).expect("router binds");
        let addr = router.local_addr();
        let runner = std::thread::spawn(move || router.run().expect("routes"));

        let mut client = Client::connect(addr);
        let row: Vec<String> = data.sample(3).iter().map(f32::to_string).collect();
        assert!(client.roundtrip("drain").contains("\"ok\":\"draining\""));
        let got = client.roundtrip(&row.join(",")).to_owned();
        assert!(
            got.contains("\"busy\":true") && got.contains("router draining"),
            "{got}"
        );
        let health = client.roundtrip("health").to_owned();
        assert!(health.contains("\"draining\":true"), "{health}");
        assert!(client.roundtrip("undrain").contains("\"ok\":\"accepting\""));
        let got = client.roundtrip(&row.join(",")).to_owned();
        let expected = forest.predict_majority(data.sample(3));
        assert!(
            got.starts_with(&format!("{{\"class\":{expected},")),
            "{got}"
        );

        assert!(client.roundtrip("shutdown").contains("shutting down"));
        runner.join().expect("router thread");
        shutdown_peer(shard_addr);
        shard_runner.join().expect("shard thread");
    }

    #[test]
    fn shardmap_set_replaces_the_upstreams_live() {
        let (forest, data) = forest_and_data();
        let spans = forest.plan_spans(2);
        let (a0, r0) = spawn_shard(&forest, spans[0]);
        let (a1, r1) = spawn_shard(&forest, spans[1]);
        // Start the router on just the first shard: its answers are a
        // partial forest's — then swap in the full two-shard map.
        let router = RouterServer::bind("127.0.0.1:0", vec![a0]).expect("router binds");
        let addr = router.local_addr();
        let runner = std::thread::spawn(move || router.run().expect("routes"));

        let mut client = Client::connect(addr);
        let map = client
            .roundtrip(&format!("shardmap set {a0},{a1}"))
            .to_owned();
        assert!(map.contains(&format!("\"addr\":\"{a1}\"")), "{map}");
        // The new links may still be dialing on the next tick; poll
        // health until both are up (bounded).
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let health = client.roundtrip("health").to_owned();
            if health.contains("\"shards_up\":2") {
                break;
            }
            assert!(Instant::now() < deadline, "shards never came up: {health}");
            std::thread::sleep(Duration::from_millis(10));
        }
        for i in 0..6 {
            let row: Vec<String> = data.sample(i).iter().map(f32::to_string).collect();
            let expected = forest.predict_majority(data.sample(i));
            let got = client.roundtrip(&row.join(",")).to_owned();
            assert!(
                got.starts_with(&format!("{{\"class\":{expected},")),
                "{got}"
            );
        }
        let bad = client.roundtrip("shardmap set not-an-addr").to_owned();
        assert!(bad.contains("invalid shard address"), "{bad}");

        assert!(client.roundtrip("shutdown").contains("shutting down"));
        runner.join().expect("router thread");
        for (addr, runner) in [(a0, r0), (a1, r1)] {
            shutdown_peer(addr);
            runner.join().expect("shard thread");
        }
    }

    #[test]
    fn shard_death_mid_stream_fails_visibly_and_recovers() {
        let (forest, data) = forest_and_data();
        let spans = forest.plan_spans(2);
        let (a0, r0) = spawn_shard(&forest, spans[0]);
        let (a1, r1) = spawn_shard(&forest, spans[1]);
        let router = RouterServer::bind("127.0.0.1:0", vec![a0, a1]).expect("router binds");
        let addr = router.local_addr();
        let runner = std::thread::spawn(move || router.run().expect("routes"));

        let mut client = Client::connect(addr);
        let row: Vec<String> = data.sample(1).iter().map(f32::to_string).collect();
        let expected = forest.predict_majority(data.sample(1));
        let got = client.roundtrip(&row.join(",")).to_owned();
        assert!(
            got.starts_with(&format!("{{\"class\":{expected},")),
            "{got}"
        );

        // Kill the second shard; the router must degrade to visible
        // busy answers (mid-request death or down-at-admission), never
        // a silently-partial class.
        shutdown_peer(a1);
        r1.join().expect("shard thread");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let got = client.roundtrip(&row.join(",")).to_owned();
            assert!(
                !got.starts_with("{\"class\":"),
                "partial-quorum merge leaked a class: {got}"
            );
            if got.contains("\"busy\":true") && got.contains("down") {
                break; // the link is torn down and admission now refuses
            }
            assert!(
                Instant::now() < deadline,
                "never saw the shard marked down: {got}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }

        // Restart a shard on a fresh port and swap the map: service
        // recovers with exact answers.
        let (a2, r2) = spawn_shard(&forest, spans[1]);
        client.roundtrip(&format!("shardmap set {a0},{a2}"));
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let got = client.roundtrip(&row.join(",")).to_owned();
            if got.starts_with(&format!("{{\"class\":{expected},")) {
                break;
            }
            assert!(
                got.contains("\"busy\":true"),
                "wrong answer during recovery: {got}"
            );
            assert!(Instant::now() < deadline, "service never recovered: {got}");
            std::thread::sleep(Duration::from_millis(10));
        }

        assert!(client.roundtrip("shutdown").contains("shutting down"));
        runner.join().expect("router thread");
        for (addr, runner) in [(a0, r0), (a2, r2)] {
            shutdown_peer(addr);
            runner.join().expect("shard thread");
        }
    }

    #[test]
    fn malformed_and_oversized_lines_answer_without_fanning_out() {
        let (forest, _) = forest_and_data();
        let (shard_addr, shard_runner) = spawn_shard(&forest, (0, 4));
        let router = RouterServer::bind("127.0.0.1:0", vec![shard_addr]).expect("router binds");
        let addr = router.local_addr();
        let runner = std::thread::spawn(move || router.run().expect("routes"));

        let mut client = Client::connect(addr);
        let got = client.roundtrip("not,a,row,x").to_owned();
        assert!(got.contains("\"error\""), "{got}");
        let oversized = "1,".repeat(flint_serve::MAX_LINE_BYTES);
        let got = client.roundtrip(&oversized).to_owned();
        assert!(got.contains("exceeds"), "{got}");
        // The connection survived both and no request touched a shard.
        let stats = client.roundtrip("stats").to_owned();
        assert!(stats.contains("\"requests\":0"), "{stats}");

        assert!(client.roundtrip("shutdown").contains("shutting down"));
        runner.join().expect("router thread");
        shutdown_peer(shard_addr);
        shard_runner.join().expect("shard thread");
    }

    #[test]
    fn parse_shard_reply_classifies_the_three_shapes() {
        match parse_shard_reply("{\"votes\":[3,0,2],\"engine\":\"flint\",\"batch\":1}") {
            ShardReply::Votes(v) => assert_eq!(v, vec![3, 0, 2]),
            _ => panic!("votes line misclassified"),
        }
        match parse_shard_reply("{\"error\":\"busy: request queue full\",\"busy\":true}") {
            ShardReply::Shed(reason) => assert_eq!(reason, "request queue full"),
            _ => panic!("busy line misclassified"),
        }
        match parse_shard_reply("{\"error\":\"expected 4 features, got 2\"}") {
            ShardReply::Failed(reason) => assert_eq!(reason, "expected 4 features, got 2"),
            _ => panic!("error line misclassified"),
        }
    }
}
