//! Property-based validation of the FLInt operators against the host's
//! IEEE-754 hardware semantics, over the full non-NaN bit space.

use flint_core::compare::{ge_bits, ge_bits_cases, ge_bits_sign_flip};
use flint_core::{flint_eq, flint_ge, flint_gt, flint_le, flint_lt};
use flint_core::{FlintOrd, FloatBits, PreparedThreshold};
use proptest::prelude::*;

/// Arbitrary non-NaN f32 drawn uniformly over *bit patterns*, so
/// denormals, both zeros and infinities appear with realistic density.
fn non_nan_f32() -> impl Strategy<Value = f32> {
    any::<u32>()
        .prop_map(f32::from_bits)
        .prop_filter("NaN", |v| !v.is_nan())
}

fn non_nan_f64() -> impl Strategy<Value = f64> {
    any::<u64>()
        .prop_map(f64::from_bits)
        .prop_filter("NaN", |v| !v.is_nan())
}

/// The paper's order: IEEE `>=` except that `-0.0 < +0.0`.
fn paper_ge<F: FloatBits + PartialOrd>(x: F, y: F) -> bool {
    if x == y {
        // equal by IEEE; break ties by sign bit (only ±0 pairs differ)
        !x.sign_bit() || y.sign_bit()
    } else {
        x >= y
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn theorem1_equals_paper_order_f32(x in non_nan_f32(), y in non_nan_f32()) {
        prop_assert_eq!(flint_ge(x, y), paper_ge(x, y));
    }

    #[test]
    fn theorem1_equals_paper_order_f64(x in non_nan_f64(), y in non_nan_f64()) {
        prop_assert_eq!(flint_ge(x, y), paper_ge(x, y));
    }

    #[test]
    fn formulations_agree_f32(x in non_nan_f32(), y in non_nan_f32()) {
        let (xb, yb) = (x.to_signed_bits(), y.to_signed_bits());
        let t1 = ge_bits::<f32>(xb, yb);
        prop_assert_eq!(t1, ge_bits_cases::<f32>(xb, yb));
        prop_assert_eq!(t1, ge_bits_sign_flip::<f32>(xb, yb));
    }

    #[test]
    fn formulations_agree_f64(x in non_nan_f64(), y in non_nan_f64()) {
        let (xb, yb) = (x.to_signed_bits(), y.to_signed_bits());
        let t1 = ge_bits::<f64>(xb, yb);
        prop_assert_eq!(t1, ge_bits_cases::<f64>(xb, yb));
        prop_assert_eq!(t1, ge_bits_sign_flip::<f64>(xb, yb));
    }

    #[test]
    fn relations_are_a_total_order_f32(x in non_nan_f32(), y in non_nan_f32(), z in non_nan_f32()) {
        // antisymmetry + totality
        prop_assert!(flint_ge(x, y) || flint_ge(y, x));
        if flint_ge(x, y) && flint_ge(y, x) {
            prop_assert!(flint_eq(x, y));
        }
        // transitivity
        if flint_ge(x, y) && flint_ge(y, z) {
            prop_assert!(flint_ge(x, z));
        }
        // trichotomy
        let ways = u8::from(flint_lt(x, y)) + u8::from(flint_eq(x, y)) + u8::from(flint_gt(x, y));
        prop_assert_eq!(ways, 1);
        // duality
        prop_assert_eq!(flint_le(x, y), flint_ge(y, x));
    }

    #[test]
    fn lemma1_equality_is_bit_equality(x in non_nan_f32(), y in non_nan_f32()) {
        prop_assert_eq!(flint_eq(x, y), x.to_bits() == y.to_bits());
    }

    /// The headline guarantee of Section IV-B: after preparation the
    /// integer-only node test equals the naive IEEE `<=` for every
    /// split/feature pair.
    #[test]
    fn prepared_threshold_equals_ieee_le_f32(split in non_nan_f32(), x in non_nan_f32()) {
        let t = PreparedThreshold::new(split).expect("non-NaN split");
        prop_assert_eq!(t.le(x), x <= split);
        prop_assert_eq!(t.gt(x), x > split);
    }

    #[test]
    fn prepared_threshold_equals_ieee_le_f64(split in non_nan_f64(), x in non_nan_f64()) {
        let t = PreparedThreshold::new(split).expect("non-NaN split");
        prop_assert_eq!(t.le(x), x <= split);
    }

    /// Negative splits must flip; positive splits must not; the stored
    /// immediate must always have a clear sign bit after folding.
    #[test]
    fn threshold_key_always_nonnegative(split in non_nan_f32()) {
        let t = PreparedThreshold::new(split).expect("non-NaN split");
        prop_assert!(t.key() >= 0, "folded immediate must be a positive pattern");
        if split.is_sign_negative() && split != 0.0 {
            prop_assert!(t.flips_sign());
        } else {
            prop_assert!(!t.flips_sign());
        }
    }

    #[test]
    fn flint_ord_matches_total_cmp(x in non_nan_f32(), y in non_nan_f32()) {
        let cmp = FlintOrd::new(x).cmp(&FlintOrd::new(y));
        prop_assert_eq!(cmp, x.total_cmp(&y));
    }

    #[test]
    fn flint_ord_key_monotone(x in non_nan_f32(), y in non_nan_f32()) {
        let (kx, ky) = (FlintOrd::new(x).order_key(), FlintOrd::new(y).order_key());
        prop_assert_eq!(kx < ky, FlintOrd::new(x) < FlintOrd::new(y));
    }

    #[test]
    fn sorting_with_flint_matches_total_cmp(mut xs in proptest::collection::vec(non_nan_f32(), 0..64)) {
        let mut wrapped: Vec<FlintOrd<f32>> = xs.iter().map(|&v| FlintOrd::new(v)).collect();
        wrapped.sort();
        xs.sort_by(|a, b| a.total_cmp(b));
        let got: Vec<u32> = wrapped.iter().map(|w| w.value().to_bits()).collect();
        let want: Vec<u32> = xs.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(got, want);
    }
}
