//! Exhaustive verification of the paper's lemmas on a miniature float
//! format, independent of the host's floating point hardware.
//!
//! The paper defines its format generically for a k-bit vector with a
//! j-bit exponent and x-bit mantissa (Definition 3); IEEE-754 single and
//! double precision are instances. We instantiate a *tiny* instance —
//! k = 8, j = 4, x = 3 — decode `FP(B)` from first principles as exact
//! rationals (here: f64, which represents every mini-float value
//! exactly), and check **every lemma, the corollary and both theorems
//! over all 2^8 × 2^8 = 65 536 bit-vector pairs**. This is as close to
//! mechanizing the paper's proofs as a test suite gets.

/// Mini float: 1 sign bit, 4 exponent bits (bias 7), 3 mantissa bits.
const EXP_BITS: u32 = 4;
const MAN_BITS: u32 = 3;
const BIAS: i32 = (1 << (EXP_BITS - 1)) - 1; // 7

/// `SI(B)` for the 8-bit vector (two's complement, Definition 2).
fn si(b: u8) -> i8 {
    b as i8
}

/// `FP(B)` per Definition 3 with the denormal extension. Returns None
/// for NaN patterns (exponent all ones, mantissa non-zero), which the
/// paper excludes; infinities decode to +/- infinity as the "largest
/// representable" stand-ins the paper describes.
fn fp(b: u8) -> Option<f64> {
    let sign = if b & 0x80 != 0 { -1.0 } else { 1.0 };
    let exp = u32::from((b >> MAN_BITS) & 0x0f);
    let man = u32::from(b & 0x07);
    if exp == (1 << EXP_BITS) - 1 {
        return if man == 0 {
            Some(sign * f64::INFINITY)
        } else {
            None // NaN: excluded from the ordering lemmas
        };
    }
    let (unbiased, implicit) = if exp == 0 {
        (1 - BIAS, 0.0)
    } else {
        (exp as i32 - BIAS, 1.0)
    };
    let mantissa = implicit + man as f64 / (1u32 << MAN_BITS) as f64;
    Some(sign * mantissa * 2f64.powi(unbiased))
}

/// The paper's float order on decoded values: ordinary numeric order,
/// refined so that the -0.0 pattern sorts strictly below +0.0
/// (Section III-A: "we assume -0.0 < 0.0").
fn paper_ge(xb: u8, yb: u8, x: f64, y: f64) -> bool {
    if x == y && x == 0.0 {
        // ±0 pair: order by sign bit.
        !(xb & 0x80 != 0 && yb & 0x80 == 0)
    } else {
        x >= y
    }
}

/// Theorem 1 transcribed for the 8-bit instance.
fn flint_ge8(xb: u8, yb: u8) -> bool {
    let (x, y) = (si(xb), si(yb));
    (x >= y) ^ (x < 0 && y < 0 && x != y)
}

/// Corollary 1 transcribed for the 8-bit instance.
fn corollary1_ge8(xb: u8, yb: u8) -> bool {
    let (x, y) = (si(xb), si(yb));
    if x < 0 && y < 0 && x != y {
        x < y
    } else {
        x >= y
    }
}

/// Theorem 2 transcribed for the 8-bit instance (sign flip via XOR).
fn theorem2_ge8(xb: u8, yb: u8) -> bool {
    let (x, y) = (si(xb), si(yb));
    if x < 0 {
        si(yb ^ 0x80) >= si(xb ^ 0x80)
    } else {
        x >= y
    }
}

fn all_non_nan() -> Vec<u8> {
    (0u8..=255).filter(|&b| fp(b).is_some()).collect()
}

#[test]
fn lemma1_equality_iff_bit_equality() {
    // FP(X) = FP(Y) <=> X = Y <=> SI(X) = SI(Y), with the paper's
    // -0 != +0 convention making FP injective.
    for &xb in &all_non_nan() {
        for &yb in &all_non_nan() {
            let (x, y) = (fp(xb).unwrap(), fp(yb).unwrap());
            let fp_equal = x == y && (x != 0.0 || (xb & 0x80) == (yb & 0x80));
            assert_eq!(fp_equal, xb == yb, "xb={xb:#04x} yb={yb:#04x}");
            assert_eq!(xb == yb, si(xb) == si(yb));
        }
    }
}

#[test]
fn lemma2_absolute_value_monotone_same_sign() {
    for &xb in &all_non_nan() {
        for &yb in &all_non_nan() {
            if (xb & 0x80) != (yb & 0x80) {
                continue;
            }
            let (ax, ay) = (fp(xb).unwrap().abs(), fp(yb).unwrap().abs());
            // |FP(X)| > |FP(Y)| <=> SI(X) > SI(Y) ... for negative sign
            // the SI order runs with |value|, for positive likewise.
            if xb & 0x80 == 0 {
                assert_eq!(ax > ay, si(xb) > si(yb), "pos xb={xb:#04x} yb={yb:#04x}");
            } else {
                // both negative: SI grows with magnitude too (more bits
                // set below the sign bit = larger magnitude = larger UI
                // = larger SI within the negative range).
                assert_eq!(ax > ay, si(xb) > si(yb), "neg xb={xb:#04x} yb={yb:#04x}");
            }
        }
    }
}

#[test]
fn lemma3_positive_pairs_order_preserving() {
    for &xb in &all_non_nan() {
        for &yb in &all_non_nan() {
            if xb & 0x80 != 0 || yb & 0x80 != 0 {
                continue;
            }
            let (x, y) = (fp(xb).unwrap(), fp(yb).unwrap());
            assert_eq!(x > y, si(xb) > si(yb), "xb={xb:#04x} yb={yb:#04x}");
        }
    }
}

#[test]
fn lemma4_and_6_negative_pairs_order_inverting() {
    for &xb in &all_non_nan() {
        for &yb in &all_non_nan() {
            if xb & 0x80 == 0 || yb & 0x80 == 0 {
                continue;
            }
            let (x, y) = (fp(xb).unwrap(), fp(yb).unwrap());
            // Lemma 6 strict form, using the paper's order (bit-level
            // for the -0 pattern).
            let gt = paper_ge(xb, yb, x, y) && xb != yb;
            assert_eq!(gt, si(xb) < si(yb), "xb={xb:#04x} yb={yb:#04x}");
        }
    }
}

#[test]
fn lemma5_mixed_signs() {
    for &xb in &all_non_nan() {
        for &yb in &all_non_nan() {
            if (xb & 0x80) == (yb & 0x80) {
                continue;
            }
            let (x, y) = (fp(xb).unwrap(), fp(yb).unwrap());
            let gt = paper_ge(xb, yb, x, y) && xb != yb;
            assert_eq!(gt, si(xb) > si(yb), "xb={xb:#04x} yb={yb:#04x}");
        }
    }
}

#[test]
fn corollary1_theorem1_theorem2_exhaustive() {
    for &xb in &all_non_nan() {
        for &yb in &all_non_nan() {
            let (x, y) = (fp(xb).unwrap(), fp(yb).unwrap());
            let want = paper_ge(xb, yb, x, y);
            assert_eq!(flint_ge8(xb, yb), want, "T1 xb={xb:#04x} yb={yb:#04x}");
            assert_eq!(corollary1_ge8(xb, yb), want, "C1 xb={xb:#04x} yb={yb:#04x}");
            assert_eq!(theorem2_ge8(xb, yb), want, "T2 xb={xb:#04x} yb={yb:#04x}");
        }
    }
}

#[test]
fn mini_format_sanity() {
    assert_eq!(fp(0x00), Some(0.0));
    assert_eq!(fp(0x80), Some(-0.0)); // -0.0 == 0.0 numerically
    assert!(fp(0x80).unwrap().is_sign_negative());
    assert_eq!(fp(0x38), Some(1.0)); // exp=7 (unbiased 0), man=0
    assert_eq!(fp(0x78), Some(f64::INFINITY));
    assert_eq!(fp(0xf8), Some(f64::NEG_INFINITY));
    assert_eq!(fp(0x79), None); // NaN
    assert_eq!(fp(0x01), Some(2f64.powi(-9))); // smallest denormal: 2^-6 * 1/8
}
