//! Structured exhaustive-ish sweep: every f32 exponent value crossed
//! with extreme mantissas and both signs — ~2.3 million ordered pairs
//! covering all normal/denormal/zero/infinity boundaries, validated
//! against the paper's order.

use flint_core::{flint_eq, flint_ge, PreparedThreshold};

/// All exponent fields 0..=254 (255 = NaN/inf band handled separately)
/// with mantissa in {0, 1, max} and both signs, plus infinities.
fn boundary_values() -> Vec<f32> {
    let mut values = Vec::with_capacity(255 * 3 * 2 + 2);
    for exp in 0u32..=254 {
        for man in [0u32, 1, 0x007f_ffff] {
            let bits = (exp << 23) | man;
            values.push(f32::from_bits(bits));
            values.push(f32::from_bits(bits | 0x8000_0000));
        }
    }
    values.push(f32::INFINITY);
    values.push(f32::NEG_INFINITY);
    values
}

/// The paper's order on non-NaN floats.
fn paper_ge(x: f32, y: f32) -> bool {
    if x == y && x == 0.0 {
        !(x.is_sign_negative() && y.is_sign_positive())
    } else {
        x >= y
    }
}

#[test]
fn flint_ge_on_all_boundary_pairs() {
    let values = boundary_values();
    for &x in &values {
        for &y in &values {
            assert_eq!(
                flint_ge(x, y),
                paper_ge(x, y),
                "ge({x:e} [{:#010x}], {y:e} [{:#010x}])",
                x.to_bits(),
                y.to_bits()
            );
        }
    }
}

#[test]
fn flint_eq_on_all_boundary_pairs() {
    let values = boundary_values();
    for &x in &values {
        for &y in &values {
            assert_eq!(flint_eq(x, y), x.to_bits() == y.to_bits());
        }
    }
}

#[test]
fn prepared_thresholds_on_all_boundary_pairs() {
    // The full IEEE-agreement guarantee over the boundary lattice.
    let values = boundary_values();
    for &split in &values {
        let t = PreparedThreshold::new(split).expect("non-NaN");
        for &x in &values {
            assert_eq!(
                t.le(x),
                x <= split,
                "le({x:e}) vs split {split:e} [{:#010x}]",
                split.to_bits()
            );
        }
    }
}
