//! # flint-core — floating point comparison with integer arithmetic
//!
//! This crate implements **FLInt**, the operator introduced in
//! *"FLInt: Exploiting Floating Point Enabled Integer Arithmetic for
//! Efficient Random Forest Inference"* (Hakert, Chen, Chen — DATE 2024).
//!
//! FLInt evaluates the `>=` relation (and, by operand exchange and
//! negation, all of `<=`, `>`, `<`) between two IEEE-754 floating point
//! numbers using **only two's complement signed integer comparisons and
//! logic operations** on the raw bit patterns. This removes every use of
//! floating point hardware (or software float emulation) from workloads
//! whose only float operation is comparison — most prominently decision
//! tree and random forest inference.
//!
//! The key observation (Section III of the paper): reinterpreting an
//! IEEE-754 bit pattern as a two's complement signed integer preserves
//! the ordering of the encoded float values when both operands share a
//! sign, and *inverts* it when both are negative. [`compare::ge_bits`]
//! encodes exactly the paper's Theorem 1:
//!
//! ```text
//! FP(X) >= FP(Y)  <=>  (SI(X) >= SI(Y)) XOR (SI(X) < 0 && SI(Y) < 0 && SI(X) != SI(Y))
//! ```
//!
//! When one operand is a compile-time constant — always the case for the
//! split values of a trained decision tree — the sign test is resolved
//! *offline* (Theorem 2): a positive split value compiles to a single
//! signed integer comparison against an integer immediate, a negative
//! split value to one XOR (sign-bit flip of the feature word) plus one
//! signed comparison. [`threshold::PreparedThreshold`] packages this.
//!
//! ## Semantics and special cases
//!
//! * The operators implement the paper's convention `-0.0 < +0.0`
//!   (a *total* order on non-NaN floats), which differs from IEEE-754's
//!   `-0.0 == +0.0`. [`threshold::PreparedThreshold`] rewrites a split
//!   value of `-0.0` to `+0.0` at preparation time, after which every
//!   `<=`/`>` decision agrees bit-for-bit with IEEE semantics for all
//!   non-NaN inputs (Section IV-B of the paper).
//! * NaN does not occur in random forests; [`threshold::PreparedThreshold::new`]
//!   rejects NaN split values with [`PrepareThresholdError`]. The raw
//!   bit-level operators are still *defined* on NaN patterns (they order
//!   them by bit pattern) — see the per-function docs.
//! * Infinities need no special handling: they are encoded as the
//!   largest-magnitude patterns and order correctly.
//!
//! ## Quickstart
//!
//! ```
//! use flint_core::{flint_ge, flint_le, PreparedThreshold};
//!
//! # fn main() -> Result<(), flint_core::PrepareThresholdError> {
//! // Direct comparison, integer ops only:
//! assert!(flint_ge(10.5f32, 10.074347f32));
//! assert!(flint_le(-2.935417f32, -1.0f32));
//!
//! // Offline-prepared decision tree split (Theorem 2):
//! let node = PreparedThreshold::new(10.074347f32)?;
//! assert!(node.le(9.9f32));      // feature <= split  -> take left child
//! assert!(!node.le(11.0f32));    //                  -> take right child
//! # Ok(())
//! # }
//! ```
//!
//! The crate is `no_std`-compatible (disable the default `std` feature),
//! so it runs unmodified on FPU-less embedded targets — the deployment
//! scenario that motivates the paper.
#![cfg_attr(not(feature = "std"), no_std)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod bits;
pub mod compare;
pub mod half;
pub mod threshold;
pub mod total_order;

mod error;

pub use bits::FloatBits;
pub use compare::{
    flint_clamp, flint_eq, flint_ge, flint_gt, flint_le, flint_lt, flint_max, flint_min,
};
pub use error::PrepareThresholdError;
pub use threshold::PreparedThreshold;
pub use total_order::FlintOrd;
