//! The FLInt comparison operators (Section III-C of the paper).
//!
//! Three equivalent formulations are provided, mirroring the paper's
//! development:
//!
//! * [`ge_bits_cases`] — the two-case reference form of **Corollary 1**
//!   (used as the oracle in tests and the ablation benchmark),
//! * [`ge_bits`] — the branch-free XOR form of **Theorem 1**,
//! * [`ge_bits_sign_flip`] — the operand-exchange form of **Theorem 2**,
//!   which checks only the sign of one operand and otherwise flips both
//!   sign bits; this is the form resolved offline by
//!   [`crate::threshold::PreparedThreshold`].
//!
//! All functions operate on the *signed bit patterns* (`SI(B)` in the
//! paper) and use only integer comparison and logic operations. The
//! float-typed wrappers [`flint_ge`] etc. do nothing but the free
//! `to_bits` reinterpretation before delegating.
//!
//! # NaN
//!
//! The operators are total functions on bit patterns; on NaN patterns
//! they return the ordering of the patterns themselves, which does *not*
//! match IEEE-754's unordered NaN semantics. Random forest inference
//! never compares NaN (the paper, Section III-A), and
//! [`crate::PreparedThreshold`] enforces this at model preparation time.

use crate::bits::{BitInt, FloatBits};

/// Theorem 1: `FP(X) >= FP(Y)` computed as
/// `(SI(X) >= SI(Y)) XOR (SI(X) < 0 && SI(Y) < 0 && SI(X) != SI(Y))`.
///
/// Uses one integer comparison for `u`, two sign tests, one inequality
/// and one XOR — no floating point operations whatsoever.
///
/// # Examples
///
/// ```
/// use flint_core::compare::ge_bits;
/// use flint_core::FloatBits;
///
/// let x = 10.5f32.to_signed_bits();
/// let y = (-3.25f32).to_signed_bits();
/// assert!(ge_bits::<f32>(x, y));
/// assert!(!ge_bits::<f32>(y, x));
/// ```
#[inline]
pub fn ge_bits<F: FloatBits>(x: F::Signed, y: F::Signed) -> bool {
    let u = x >= y;
    let v = x < F::Signed::ZERO && y < F::Signed::ZERO && x != y;
    u ^ v
}

/// Corollary 1: the two-case reference formulation.
///
/// ```text
/// FP(X) >= FP(Y) <=> SI(X) <  SI(Y)  if both negative and unequal
///                    SI(X) >= SI(Y)  otherwise
/// ```
///
/// Semantically identical to [`ge_bits`]; kept as the executable
/// statement of the corollary and as the oracle for the equivalence
/// property tests.
#[inline]
pub fn ge_bits_cases<F: FloatBits>(x: F::Signed, y: F::Signed) -> bool {
    let both_negative = x < F::Signed::ZERO && y < F::Signed::ZERO;
    if both_negative && x != y {
        x < y
    } else {
        x >= y
    }
}

/// Theorem 2: `FP(X) >= FP(Y)` with a single runtime sign test on `X`.
///
/// If `SI(X) < 0`, both operands have their sign bit flipped (one XOR
/// each — the bit-level "multiply by −1") and the comparison is
/// reversed; at that point at least one operand is non-negative, so the
/// plain signed comparison is order-preserving. This is the form whose
/// sign test a code generator resolves *offline* when one operand is a
/// constant.
///
/// # Examples
///
/// ```
/// use flint_core::compare::{ge_bits, ge_bits_sign_flip};
/// use flint_core::FloatBits;
///
/// for (a, b) in [(1.5f32, -2.0f32), (-2.0, -7.125), (0.0, -0.0)] {
///     let (x, y) = (a.to_signed_bits(), b.to_signed_bits());
///     assert_eq!(ge_bits_sign_flip::<f32>(x, y), ge_bits::<f32>(x, y));
/// }
/// ```
#[inline]
pub fn ge_bits_sign_flip<F: FloatBits>(x: F::Signed, y: F::Signed) -> bool {
    if x < F::Signed::ZERO {
        // -1 * SI(Y) >= -1 * SI(X), realized as sign-bit XORs.
        (y ^ F::SIGN_MASK_SIGNED) >= (x ^ F::SIGN_MASK_SIGNED)
    } else {
        x >= y
    }
}

/// `FP(X) >= FP(Y)` on float values, via [`ge_bits`].
///
/// This is the user-facing FLInt operator. For repeated comparisons
/// against a fixed threshold (decision tree nodes), prefer
/// [`crate::PreparedThreshold`], which hoists the sign handling offline.
///
/// Under the paper's total-order convention, `flint_ge(0.0, -0.0)` is
/// `true` while `flint_ge(-0.0, 0.0)` is `false` (IEEE would call them
/// equal).
///
/// # Examples
///
/// ```
/// use flint_core::flint_ge;
///
/// assert!(flint_ge(2.0f32, 1.0f32));
/// assert!(flint_ge(-1.0f64, -2.0f64));
/// assert!(flint_ge(1.0f32, 1.0f32));
/// assert!(!flint_ge(-0.0f32, 0.0f32)); // -0.0 < +0.0 in FLInt's order
/// ```
#[inline]
pub fn flint_ge<F: FloatBits>(x: F, y: F) -> bool {
    ge_bits::<F>(x.to_signed_bits(), y.to_signed_bits())
}

/// `FP(X) <= FP(Y)` — [`flint_ge`] with exchanged operands
/// (Section IV-A of the paper).
///
/// # Examples
///
/// ```
/// assert!(flint_core::flint_le(1.0f32, 2.0f32));
/// assert!(flint_core::flint_le(-0.0f64, 0.0f64));
/// ```
#[inline]
pub fn flint_le<F: FloatBits>(x: F, y: F) -> bool {
    ge_bits::<F>(y.to_signed_bits(), x.to_signed_bits())
}

/// `FP(X) > FP(Y)` — the negation of [`flint_le`].
///
/// # Examples
///
/// ```
/// assert!(flint_core::flint_gt(3.0f32, 2.0f32));
/// assert!(!flint_core::flint_gt(2.0f32, 2.0f32));
/// ```
#[inline]
pub fn flint_gt<F: FloatBits>(x: F, y: F) -> bool {
    !flint_le(x, y)
}

/// `FP(X) < FP(Y)` — the negation of [`flint_ge`].
///
/// # Examples
///
/// ```
/// assert!(flint_core::flint_lt(-1.0f64, 1.0f64));
/// assert!(flint_core::flint_lt(-0.0f32, 0.0f32));
/// ```
#[inline]
pub fn flint_lt<F: FloatBits>(x: F, y: F) -> bool {
    !flint_ge(x, y)
}

/// `FP(X) == FP(Y)` — by Lemma 1, float equality of non-NaN patterns is
/// exactly bit equality, i.e. one integer comparison.
///
/// Distinguishes `-0.0` from `+0.0` (the paper's convention).
///
/// # Examples
///
/// ```
/// assert!(flint_core::flint_eq(1.5f32, 1.5f32));
/// assert!(!flint_core::flint_eq(-0.0f32, 0.0f32));
/// ```
#[inline]
pub fn flint_eq<F: FloatBits>(x: F, y: F) -> bool {
    x.to_signed_bits() == y.to_signed_bits()
}

/// The larger of two floats under the paper's total order — integer
/// comparisons only. Unlike `f32::max`, `flint_max(-0.0, 0.0)` is
/// deterministically `+0.0`.
///
/// # Examples
///
/// ```
/// assert_eq!(flint_core::flint_max(1.0f32, 2.0f32), 2.0);
/// assert_eq!(flint_core::flint_max(-0.0f32, 0.0f32).to_bits(), 0);
/// ```
#[inline]
pub fn flint_max<F: FloatBits>(x: F, y: F) -> F {
    if flint_ge(x, y) {
        x
    } else {
        y
    }
}

/// The smaller of two floats under the paper's total order — integer
/// comparisons only.
///
/// # Examples
///
/// ```
/// assert_eq!(flint_core::flint_min(1.0f32, 2.0f32), 1.0);
/// assert!(flint_core::flint_min(-0.0f32, 0.0f32).is_sign_negative());
/// ```
#[inline]
pub fn flint_min<F: FloatBits>(x: F, y: F) -> F {
    if flint_le(x, y) {
        x
    } else {
        y
    }
}

/// Clamps `x` into `[lo, hi]` under the paper's total order.
///
/// # Panics
///
/// Debug-asserts `lo <= hi` in the FLInt order.
///
/// # Examples
///
/// ```
/// assert_eq!(flint_core::flint_clamp(5.0f32, -1.0, 1.0), 1.0);
/// assert_eq!(flint_core::flint_clamp(0.25f32, -1.0, 1.0), 0.25);
/// ```
#[inline]
pub fn flint_clamp<F: FloatBits>(x: F, lo: F, hi: F) -> F {
    debug_assert!(flint_le(lo, hi), "clamp bounds must be ordered");
    flint_min(flint_max(x, lo), hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Values covering every structural case: ±0, denormals (min and
    /// mid), normals across exponents, the listing constants, extremes
    /// and infinities.
    fn probe_values_f32() -> [f32; 22] {
        [
            0.0,
            -0.0,
            f32::from_bits(1),           // smallest positive denormal
            -f32::from_bits(1),          // largest negative denormal
            f32::from_bits(0x0040_0000), // mid denormal
            f32::MIN_POSITIVE,           // smallest normal
            -f32::MIN_POSITIVE,
            1.0,
            -1.0,
            1.5,
            -1.5,
            2.0,
            -2.0,
            10.074347,
            11.974715,
            10430.507,
            -2.935417,
            f32::MAX,
            f32::MIN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            core::f32::consts::PI,
        ]
    }

    fn probe_values_f64() -> [f64; 16] {
        [
            0.0,
            -0.0,
            f64::from_bits(1),
            -f64::from_bits(1),
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            1.0,
            -1.0,
            10.074347,
            -2.935417,
            f64::MAX,
            f64::MIN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            core::f64::consts::E,
            -core::f64::consts::E,
        ]
    }

    /// The paper's order: IEEE order except -0.0 < +0.0.
    fn paper_ge_f32(x: f32, y: f32) -> bool {
        if x == 0.0 && y == 0.0 {
            // Only the zero pair differs from IEEE: use the sign bits.
            // x >= y unless x is -0.0 and y is +0.0.
            !(x.is_sign_negative() && y.is_sign_positive())
        } else {
            x >= y
        }
    }

    fn paper_ge_f64(x: f64, y: f64) -> bool {
        if x == 0.0 && y == 0.0 {
            !(x.is_sign_negative() && y.is_sign_positive())
        } else {
            x >= y
        }
    }

    #[test]
    fn theorem1_matches_paper_order_f32() {
        for &x in &probe_values_f32() {
            for &y in &probe_values_f32() {
                assert_eq!(
                    flint_ge(x, y),
                    paper_ge_f32(x, y),
                    "ge({x}, {y}) [bits {:#010x}, {:#010x}]",
                    x.to_bits(),
                    y.to_bits()
                );
            }
        }
    }

    #[test]
    fn theorem1_matches_paper_order_f64() {
        for &x in &probe_values_f64() {
            for &y in &probe_values_f64() {
                assert_eq!(flint_ge(x, y), paper_ge_f64(x, y), "ge({x}, {y})");
            }
        }
    }

    #[test]
    fn three_formulations_agree() {
        for &x in &probe_values_f32() {
            for &y in &probe_values_f32() {
                let (xb, yb) = (x.to_signed_bits(), y.to_signed_bits());
                let t1 = ge_bits::<f32>(xb, yb);
                assert_eq!(t1, ge_bits_cases::<f32>(xb, yb), "cases({x},{y})");
                assert_eq!(t1, ge_bits_sign_flip::<f32>(xb, yb), "flip({x},{y})");
            }
        }
    }

    #[test]
    fn derived_relations_are_consistent() {
        for &x in &probe_values_f32() {
            for &y in &probe_values_f32() {
                assert_eq!(flint_le(x, y), flint_ge(y, x));
                assert_eq!(flint_gt(x, y), !flint_le(x, y));
                assert_eq!(flint_lt(x, y), !flint_ge(x, y));
                // Totality: exactly one of <, ==, > holds.
                let ways =
                    u8::from(flint_lt(x, y)) + u8::from(flint_eq(x, y)) + u8::from(flint_gt(x, y));
                assert_eq!(ways, 1, "trichotomy for ({x}, {y})");
            }
        }
    }

    #[test]
    fn equality_is_bit_equality() {
        assert!(flint_eq(1.5f32, 1.5f32));
        assert!(!flint_eq(-0.0f32, 0.0f32));
        assert!(flint_eq(f32::INFINITY, f32::INFINITY));
        // Lemma 1 both directions on probes.
        for &x in &probe_values_f32() {
            for &y in &probe_values_f32() {
                assert_eq!(flint_eq(x, y), x.to_bits() == y.to_bits());
            }
        }
    }

    #[test]
    fn infinities_order_as_extremes() {
        assert!(flint_ge(f32::INFINITY, f32::MAX));
        assert!(flint_le(f32::NEG_INFINITY, f32::MIN));
        assert!(flint_lt(f32::NEG_INFINITY, f32::INFINITY));
    }

    #[test]
    fn negative_order_inversion_lemma6() {
        // Lemma 6: for both-negative unequal patterns, FP order is the
        // reverse of SI order.
        let pairs = [(-1.0f32, -2.0f32), (-0.5, -1.5), (-2.935417, -10430.5)];
        for (a, b) in pairs {
            assert!(a > b);
            // SI order inverted:
            assert!(a.to_signed_bits() < b.to_signed_bits());
            assert!(flint_gt(a, b));
        }
    }

    #[test]
    fn mixed_sign_lemma5() {
        assert!(flint_ge(f32::from_bits(1), -f32::MAX));
        assert!(flint_lt(-f32::from_bits(1), f32::from_bits(1)));
        assert!(flint_gt(0.0f32, -1.0f32));
    }

    #[test]
    fn min_max_match_ieee_on_distinct_values() {
        for &x in &probe_values_f32() {
            for &y in &probe_values_f32() {
                if x != y {
                    assert_eq!(flint_max(x, y), x.max(y), "max({x}, {y})");
                    assert_eq!(flint_min(x, y), x.min(y), "min({x}, {y})");
                }
            }
        }
    }

    #[test]
    fn min_max_refine_signed_zero() {
        assert_eq!(flint_max(-0.0f32, 0.0).to_bits(), 0);
        assert_eq!(flint_max(0.0f32, -0.0).to_bits(), 0);
        assert_eq!(flint_min(-0.0f32, 0.0).to_bits(), (-0.0f32).to_bits());
        assert_eq!(flint_min(0.0f32, -0.0).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn clamp_behaviour() {
        assert_eq!(flint_clamp(5.0f32, -1.0, 1.0), 1.0);
        assert_eq!(flint_clamp(-5.0f32, -1.0, 1.0), -1.0);
        assert_eq!(flint_clamp(0.25f32, -1.0, 1.0), 0.25);
        assert_eq!(flint_clamp(0.5f64, 0.0, 1.0), 0.5);
        // Degenerate interval.
        assert_eq!(flint_clamp(7.0f32, 2.0, 2.0), 2.0);
    }
}
