//! Bit-level interpretations of IEEE-754 floating point formats.
//!
//! This module is the Rust rendering of Section III-A of the paper: a
//! fixed-width bit vector `B ∈ {0,1}^k` can be interpreted as an unsigned
//! integer `UI(B)`, a two's complement signed integer `SI(B)`, or an
//! IEEE-754 floating point number `FP(B)` (Definition 1). The
//! [`FloatBits`] trait exposes all three interpretations plus the
//! sign/exponent/mantissa decomposition of Definition 3 for `f32`
//! (k = 32, j = 8, x = 23) and `f64` (k = 64, j = 11, x = 52).
//!
//! All conversions are free bit reinterpretations (`to_bits`/`from_bits`
//! and integer casts); nothing here touches floating point arithmetic.

use core::fmt::Debug;
use core::hash::Hash;
use core::ops::{BitAnd, BitOr, BitXor, Not, Shl, Shr};

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
    impl Sealed for crate::half::Half {}
}

/// Minimal integer capabilities required by the FLInt operators.
///
/// Implemented for the signed and unsigned bit-pattern carriers of the
/// supported float widths (`i32`/`u32`, `i64`/`u64`). This is a sealed
/// implementation detail of [`FloatBits`]; it exists so the comparison
/// code in [`crate::compare`] can be written once, generically over the
/// float width.
pub trait BitInt:
    Copy
    + Ord
    + Eq
    + Hash
    + Debug
    + BitXor<Output = Self>
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + Not<Output = Self>
    + Shl<u32, Output = Self>
    + Shr<u32, Output = Self>
{
    /// The additive identity (`0`).
    const ZERO: Self;
    /// The multiplicative identity (`1`).
    const ONE: Self;
}

macro_rules! impl_bit_int {
    ($($t:ty),*) => {$(
        impl BitInt for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;
        }
    )*};
}
impl_bit_int!(i16, u16, i32, u32, i64, u64);

/// A floating point type whose bit pattern can be reinterpreted as a
/// two's complement signed integer of the same width.
///
/// The trait mirrors Definitions 1–4 of the paper:
///
/// * [`to_signed_bits`](FloatBits::to_signed_bits) is `SI(B)` for the bit
///   vector `B` of `self`,
/// * [`to_unsigned_bits`](FloatBits::to_unsigned_bits) is `UI(B)`,
/// * `self` itself is `FP(B)`,
/// * [`abs_bits`](FloatBits::abs_bits) clears the sign bit, yielding the
///   pattern of `|FP(B)|` (Definition 4).
///
/// The trait is sealed: exactly `f32` and `f64` implement it, matching
/// the single- and double-precision instances of the generic k-bit
/// format used throughout the paper.
///
/// # Examples
///
/// ```
/// use flint_core::FloatBits;
///
/// // The example constant from Listing 1/2 of the paper:
/// let split = <f32 as FloatBits>::from_unsigned_bits(0x4121_3087);
/// assert!((split - 10.074347).abs() < 1e-5);
/// assert_eq!(split.to_unsigned_bits(), 0x4121_3087);
/// ```
pub trait FloatBits: Copy + PartialOrd + PartialEq + Debug + sealed::Sealed {
    /// Signed two's complement carrier of the bit pattern (`i32`/`i64`).
    type Signed: BitInt;
    /// Unsigned carrier of the bit pattern (`u32`/`u64`).
    type Unsigned: BitInt;

    /// Total bit width `k` of the format (32 or 64).
    const TOTAL_BITS: u32;
    /// Exponent field width `j` (8 for `f32`, 11 for `f64`).
    const EXPONENT_BITS: u32;
    /// Mantissa field width `x` (23 for `f32`, 52 for `f64`).
    const MANTISSA_BITS: u32;
    /// Exponent bias `2^(j-1) - 1` (127 for `f32`, 1023 for `f64`).
    const BIAS: i32;
    /// The sign bit as a signed pattern (`1 << (k-1)`, i.e. `iN::MIN`).
    const SIGN_MASK_SIGNED: Self::Signed;
    /// The sign bit as an unsigned pattern (`1 << (k-1)`).
    const SIGN_MASK_UNSIGNED: Self::Unsigned;

    /// Reinterprets the bit pattern as a two's complement signed integer
    /// — the paper's `SI(B)`.
    fn to_signed_bits(self) -> Self::Signed;
    /// Reinterprets the bit pattern as an unsigned integer — `UI(B)`.
    fn to_unsigned_bits(self) -> Self::Unsigned;
    /// Reconstructs the float whose bit pattern equals `bits` — the
    /// inverse of [`to_signed_bits`](FloatBits::to_signed_bits).
    fn from_signed_bits(bits: Self::Signed) -> Self;
    /// Reconstructs the float whose bit pattern equals `bits` — the
    /// inverse of [`to_unsigned_bits`](FloatBits::to_unsigned_bits).
    fn from_unsigned_bits(bits: Self::Unsigned) -> Self;

    /// `true` if the value is a NaN pattern (exponent all ones, mantissa
    /// non-zero). FLInt operators are only *meaningful* on non-NaN input.
    fn is_nan_value(self) -> bool;

    /// The sign bit: `true` for negative patterns, including `-0.0`.
    #[inline]
    fn sign_bit(self) -> bool {
        self.to_unsigned_bits() & Self::SIGN_MASK_UNSIGNED != Self::Unsigned::ZERO
    }

    /// The biased exponent field `UI(e_{j-1}, …, e_0)` of Definition 3.
    fn biased_exponent(self) -> u32;

    /// The raw mantissa field `(m_{x-1}, …, m_0)` as an unsigned integer.
    fn mantissa_field(self) -> u64;

    /// `true` if the pattern is denormalized (biased exponent 0 and
    /// non-zero mantissa) — the sub-`2^-bias` extension of Definition 3.
    #[inline]
    fn is_denormal(self) -> bool {
        self.biased_exponent() == 0 && self.mantissa_field() != 0
    }

    /// Bit pattern of `|FP(B)|` — clears the sign bit (Definition 4).
    #[inline]
    fn abs_bits(self) -> Self::Unsigned {
        self.to_unsigned_bits() & !Self::SIGN_MASK_UNSIGNED
    }

    /// Bit pattern of `-FP(B)` — flips the sign bit. This is the
    /// "multiply by −1" of Theorem 2 and the `eor`/`^ (1<<31)` of
    /// Listings 4 and 5; it costs one XOR and no float hardware.
    #[inline]
    fn negated_bits(self) -> Self::Signed
    where
        Self::Signed: BitXor<Output = Self::Signed>,
    {
        self.to_signed_bits() ^ Self::SIGN_MASK_SIGNED
    }
}

impl FloatBits for f32 {
    type Signed = i32;
    type Unsigned = u32;

    const TOTAL_BITS: u32 = 32;
    const EXPONENT_BITS: u32 = 8;
    const MANTISSA_BITS: u32 = 23;
    const BIAS: i32 = 127;
    const SIGN_MASK_SIGNED: i32 = i32::MIN;
    const SIGN_MASK_UNSIGNED: u32 = 0x8000_0000;

    #[inline]
    fn to_signed_bits(self) -> i32 {
        self.to_bits() as i32
    }
    #[inline]
    fn to_unsigned_bits(self) -> u32 {
        self.to_bits()
    }
    #[inline]
    fn from_signed_bits(bits: i32) -> Self {
        f32::from_bits(bits as u32)
    }
    #[inline]
    fn from_unsigned_bits(bits: u32) -> Self {
        f32::from_bits(bits)
    }
    #[inline]
    fn is_nan_value(self) -> bool {
        // Expressed on the bit level so a no-FPU build needs no float ops:
        // NaN <=> exponent all ones and mantissa non-zero.
        let bits = self.to_bits();
        (bits & 0x7f80_0000) == 0x7f80_0000 && (bits & 0x007f_ffff) != 0
    }
    #[inline]
    fn biased_exponent(self) -> u32 {
        (self.to_bits() >> 23) & 0xff
    }
    #[inline]
    fn mantissa_field(self) -> u64 {
        u64::from(self.to_bits() & 0x007f_ffff)
    }
}

impl FloatBits for f64 {
    type Signed = i64;
    type Unsigned = u64;

    const TOTAL_BITS: u32 = 64;
    const EXPONENT_BITS: u32 = 11;
    const MANTISSA_BITS: u32 = 52;
    const BIAS: i32 = 1023;
    const SIGN_MASK_SIGNED: i64 = i64::MIN;
    const SIGN_MASK_UNSIGNED: u64 = 0x8000_0000_0000_0000;

    #[inline]
    fn to_signed_bits(self) -> i64 {
        self.to_bits() as i64
    }
    #[inline]
    fn to_unsigned_bits(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_signed_bits(bits: i64) -> Self {
        f64::from_bits(bits as u64)
    }
    #[inline]
    fn from_unsigned_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
    #[inline]
    fn is_nan_value(self) -> bool {
        let bits = self.to_bits();
        (bits & 0x7ff0_0000_0000_0000) == 0x7ff0_0000_0000_0000
            && (bits & 0x000f_ffff_ffff_ffff) != 0
    }
    #[inline]
    fn biased_exponent(self) -> u32 {
        ((self.to_bits() >> 52) & 0x7ff) as u32
    }
    #[inline]
    fn mantissa_field(self) -> u64 {
        self.to_bits() & 0x000f_ffff_ffff_ffff
    }
}

/// Decodes a bit pattern according to Definition 3 of the paper, from
/// first principles — without relying on the hardware float semantics of
/// the host.
///
/// Returns the mathematical value `FP(B)` as an `f64` (exact for every
/// finite `f32` pattern). Special patterns decode to `±inf`/NaN as in
/// IEEE-754. Used by tests to validate that the host float types agree
/// with the paper's format definition, and by the Fig. 2 data series.
///
/// # Examples
///
/// ```
/// use flint_core::bits::decode_f32_definition;
///
/// assert_eq!(
///     decode_f32_definition(0x4121_3087),
///     f64::from(f32::from_bits(0x4121_3087))
/// );
/// assert_eq!(decode_f32_definition(0x0000_0000), 0.0);
/// assert!(decode_f32_definition(0x8000_0000).is_sign_negative()); // -0.0
/// ```
pub fn decode_f32_definition(bits: u32) -> f64 {
    let sign = if bits & 0x8000_0000 != 0 { -1.0 } else { 1.0 };
    let exp = (bits >> 23) & 0xff;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        return if man == 0 {
            sign * f64::INFINITY
        } else {
            f64::NAN
        };
    }
    // Definition 3 with the denormal extension: exponent 0 means the
    // exponent is interpreted as -bias + 1 and the implicit 1 is dropped.
    let (unbiased, implicit) = if exp == 0 {
        (1 - 127, 0.0)
    } else {
        (exp as i32 - 127, 1.0)
    };
    let mantissa = implicit + (man as f64) / (1u64 << 23) as f64;
    sign * mantissa * pow2(unbiased)
}

/// `2^e` for `e` within the normal f64 exponent range, built directly
/// from the bit pattern (`powi` is unavailable in `no_std`).
fn pow2(e: i32) -> f64 {
    debug_assert!((-1022..=1023).contains(&e));
    f64::from_bits(((e + 1023) as u64) << 52)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing_constants_round_trip() {
        // The immediates from Listings 1/2 of the paper decode to the
        // printed split values (the paper prints the floats rounded to
        // 6 decimals, so compare with that tolerance).
        for (bits, printed) in [
            (0x4121_3087u32, 10.074347f64),
            (0x413f_986e, 11.974715),
            (0x4622_fa08, 10430.507324),
        ] {
            let v = f64::from(f32::from_unsigned_bits(bits));
            // The paper prints values at ~7 significant digits; compare
            // with a relative tolerance.
            assert!((v - printed).abs() / printed < 1e-6, "{bits:#010x} -> {v}");
            assert_eq!(f32::from_unsigned_bits(bits).to_unsigned_bits(), bits);
        }
        // The negative split from Listings 3/4: -2.935417, whose
        // sign-flipped pattern is the 0x403bddde immediate.
        let neg = f32::from_unsigned_bits(0x403b_ddde ^ 0x8000_0000);
        assert!((f64::from(neg) + 2.935417).abs() < 1e-5);
    }

    #[test]
    fn signed_unsigned_views_agree() {
        for v in [0.0f32, -0.0, 1.5, -1.5, f32::MAX, f32::MIN_POSITIVE] {
            assert_eq!(v.to_signed_bits() as u32, v.to_unsigned_bits());
            assert_eq!(f32::from_signed_bits(v.to_signed_bits()), v);
            assert_eq!(f32::from_unsigned_bits(v.to_unsigned_bits()), v);
        }
        for v in [0.0f64, -0.0, 1.5, -1.5, f64::MAX, f64::MIN_POSITIVE] {
            assert_eq!(v.to_signed_bits() as u64, v.to_unsigned_bits());
            assert_eq!(f64::from_signed_bits(v.to_signed_bits()), v);
        }
    }

    #[test]
    fn sign_bit_detection() {
        assert!(!0.0f32.sign_bit());
        assert!((-0.0f32).sign_bit());
        assert!((-1.0f32).sign_bit());
        assert!(!1.0f32.sign_bit());
        assert!((-0.0f64).sign_bit());
        assert!(f64::NEG_INFINITY.sign_bit());
    }

    #[test]
    fn exponent_and_mantissa_fields() {
        // 1.0f32 = sign 0, exponent 127, mantissa 0.
        assert_eq!(1.0f32.biased_exponent(), 127);
        assert_eq!(1.0f32.mantissa_field(), 0);
        // 1.5f32 has the top mantissa bit set.
        assert_eq!(1.5f32.mantissa_field(), 1 << 22);
        // f64: 1.0 = exponent 1023.
        assert_eq!(1.0f64.biased_exponent(), 1023);
        assert_eq!(2.0f64.biased_exponent(), 1024);
    }

    #[test]
    fn denormal_classification() {
        let denorm = f32::from_bits(0x0000_0001);
        assert!(denorm.is_denormal());
        assert!(!0.0f32.is_denormal()); // zero is not *denormal* per se
        assert!(!1.0f32.is_denormal());
        let denorm64 = f64::from_bits(1);
        assert!(denorm64.is_denormal());
    }

    #[test]
    fn nan_detection_bitwise() {
        assert!(f32::NAN.is_nan_value());
        assert!(!f32::INFINITY.is_nan_value());
        assert!(!f32::NEG_INFINITY.is_nan_value());
        assert!(!0.0f32.is_nan_value());
        assert!(f64::NAN.is_nan_value());
        assert!(!f64::INFINITY.is_nan_value());
        // A quiet NaN with payload.
        assert!(f32::from_bits(0x7fc0_dead).is_nan_value());
        // Signalling NaN pattern.
        assert!(f32::from_bits(0xff80_0001).is_nan_value());
    }

    #[test]
    fn abs_and_negate_bits() {
        assert_eq!((-1.5f32).abs_bits(), 1.5f32.to_unsigned_bits());
        assert_eq!(f32::from_signed_bits((-1.5f32).negated_bits()), 1.5f32);
        assert_eq!(f32::from_signed_bits(1.5f32.negated_bits()), -1.5f32);
        // Negating +0.0 yields -0.0 (distinct pattern).
        assert_eq!(
            f32::from_signed_bits(0.0f32.negated_bits()).to_unsigned_bits(),
            0x8000_0000
        );
    }

    #[test]
    fn definition_decoder_matches_hardware() {
        // Spot patterns incl. denormals, zero, powers of two, the listing
        // constants, and max/min magnitudes.
        let patterns: [u32; 12] = [
            0x0000_0000,
            0x8000_0000,
            0x0000_0001,
            0x0080_0000,
            0x3f80_0000,
            0x4121_3087,
            0x413f_986e,
            0x4622_fa08,
            0xc03b_ddde,
            0x7f7f_ffff,
            0xff7f_ffff,
            0x8000_0001,
        ];
        for bits in patterns {
            let hw = f32::from_bits(bits) as f64;
            let def = decode_f32_definition(bits);
            assert_eq!(hw.to_bits(), def.to_bits(), "pattern {bits:#010x}");
        }
    }

    #[test]
    fn definition_decoder_specials() {
        assert_eq!(decode_f32_definition(0x7f80_0000), f64::INFINITY);
        assert_eq!(decode_f32_definition(0xff80_0000), f64::NEG_INFINITY);
        assert!(decode_f32_definition(0x7fc0_0000).is_nan());
    }

    #[test]
    fn format_constants() {
        assert_eq!(<f32 as FloatBits>::BIAS, 127);
        assert_eq!(<f64 as FloatBits>::BIAS, 1023);
        assert_eq!(
            <f32 as FloatBits>::EXPONENT_BITS + <f32 as FloatBits>::MANTISSA_BITS + 1,
            <f32 as FloatBits>::TOTAL_BITS
        );
        assert_eq!(
            <f64 as FloatBits>::EXPONENT_BITS + <f64 as FloatBits>::MANTISSA_BITS + 1,
            <f64 as FloatBits>::TOTAL_BITS
        );
    }
}
