//! A total order on floats realized with integer operations.
//!
//! The paper's lemmas imply that the map
//!
//! ```text
//! key(B) = SI(B)                 if sign bit clear
//!          SIGN_MASK - SI(B)... // equivalently: invert all bits below
//! ```
//!
//! more precisely `key(B) = SI(B) ^ SIGN_MASK` for positive patterns and
//! `!SI(B)` (bitwise NOT) for negative patterns — applied on the
//! *unsigned* view — is strictly monotone from the paper's float order
//! (`-0.0 < +0.0`, NaN excluded) into the unsigned integers. [`FlintOrd`]
//! wraps a float together with this property, providing `Ord`/`Eq` so
//! floats can be sorted, put in `BTreeMap`s, or binary-searched using
//! integer comparisons only.
//!
//! This goes slightly beyond the paper (which needs only `>=`), but is
//! the natural library generalization: it is the same trick, resolved
//! once per value instead of once per comparison, and it is what a
//! downstream user wants when they ask "can I sort with FLInt?".

use crate::bits::{BitInt, FloatBits};
use crate::compare::ge_bits;
use core::cmp::Ordering;

/// A float wrapper that is totally ordered by integer comparisons,
/// following the paper's order (`-0.0 < +0.0`; infinities at the
/// extremes).
///
/// # Panics
///
/// [`FlintOrd::new`] panics on NaN input in debug builds (NaN has no
/// place in the paper's order); use [`FlintOrd::try_new`] for checked
/// construction.
///
/// # Examples
///
/// ```
/// use flint_core::FlintOrd;
///
/// let mut xs = vec![
///     FlintOrd::new(1.5f32),
///     FlintOrd::new(-2.0),
///     FlintOrd::new(0.0),
///     FlintOrd::new(-0.0),
/// ];
/// xs.sort(); // integer comparisons only
/// let vals: Vec<f32> = xs.iter().map(|x| x.value()).collect();
/// assert_eq!(vals[0], -2.0);
/// assert!(vals[1].is_sign_negative() && vals[1] == 0.0); // -0.0 first
/// assert_eq!(vals[3], 1.5);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FlintOrd<F: FloatBits>(F);

impl<F: FloatBits> FlintOrd<F> {
    /// Wraps a non-NaN float.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `value` is not NaN.
    #[inline]
    pub fn new(value: F) -> Self {
        debug_assert!(!value.is_nan_value(), "FlintOrd does not order NaN");
        Self(value)
    }

    /// Checked constructor: `None` for NaN.
    #[inline]
    pub fn try_new(value: F) -> Option<Self> {
        if value.is_nan_value() {
            None
        } else {
            Some(Self(value))
        }
    }

    /// The wrapped float value.
    #[inline]
    pub fn value(self) -> F {
        self.0
    }

    /// The order key: a signed integer whose natural order equals the
    /// paper's float order.
    ///
    /// For non-negative patterns `SI(B)` is already order-preserving
    /// (Lemma 3) and stays as-is. For negative patterns (order-inverted
    /// per Lemma 6) the bits are inverted and the sign bit re-set
    /// (`!SI(B) ^ SIGN_MASK`), mapping `[-inf, -0.0]` monotonically
    /// onto `[iN::MIN, -1]` — strictly below every non-negative key.
    /// Integer operations only.
    #[inline]
    pub fn order_key(self) -> F::Signed {
        let si = self.0.to_signed_bits();
        if si < F::Signed::ZERO {
            !si ^ F::SIGN_MASK_SIGNED
        } else {
            si
        }
    }
}

impl<F: FloatBits> PartialEq for FlintOrd<F> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        // Lemma 1: float equality (in the paper's order) is bit equality.
        self.0.to_signed_bits() == other.0.to_signed_bits()
    }
}

impl<F: FloatBits> Eq for FlintOrd<F> {}

impl<F: FloatBits> PartialOrd for FlintOrd<F> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<F: FloatBits> Ord for FlintOrd<F> {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        let (x, y) = (self.0.to_signed_bits(), other.0.to_signed_bits());
        if x == y {
            Ordering::Equal
        } else if ge_bits::<F>(x, y) {
            Ordering::Greater
        } else {
            Ordering::Less
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "std")]
    #[test]
    fn sorts_like_ieee_with_signed_zero_refinement() {
        let mut xs: Vec<f32> = vec![
            3.5,
            -1.0,
            0.0,
            -0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            2.0,
            -2.0,
            1e-40,
            -1e-40,
        ];
        let mut wrapped: Vec<FlintOrd<f32>> = xs.iter().map(|&v| FlintOrd::new(v)).collect();
        wrapped.sort();
        // IEEE total_cmp agrees with the paper's order on non-NaN values.
        xs.sort_by(|a, b| a.total_cmp(b));
        let got: Vec<u32> = wrapped.iter().map(|w| w.value().to_bits()).collect();
        let want: Vec<u32> = xs.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn ord_is_consistent_with_flint_ge() {
        let probes = [0.0f32, -0.0, 1.0, -1.0, f32::MAX, f32::MIN, 1e-40, -1e-40];
        for &a in &probes {
            for &b in &probes {
                let (wa, wb) = (FlintOrd::new(a), FlintOrd::new(b));
                assert_eq!(wa >= wb, crate::flint_ge(a, b), "({a}, {b})");
                assert_eq!(wa == wb, a.to_bits() == b.to_bits());
            }
        }
    }

    #[test]
    fn order_key_is_monotone() {
        let seq = [
            f32::NEG_INFINITY,
            f32::MIN,
            -1.0,
            -1e-40,
            -0.0,
            0.0,
            1e-40,
            1.0,
            f32::MAX,
            f32::INFINITY,
        ];
        for w in seq.windows(2) {
            let (a, b) = (FlintOrd::new(w[0]), FlintOrd::new(w[1]));
            assert!(
                a.order_key() < b.order_key(),
                "key({}) < key({})",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn try_new_rejects_nan() {
        assert!(FlintOrd::try_new(f32::NAN).is_none());
        assert!(FlintOrd::try_new(f64::NAN).is_none());
        assert!(FlintOrd::try_new(1.0f32).is_some());
    }

    #[test]
    fn f64_ordering() {
        let a = FlintOrd::new(-2.935417f64);
        let b = FlintOrd::new(-2.935416f64);
        assert!(a < b);
        assert!(FlintOrd::new(0.0f64) > FlintOrd::new(-0.0f64));
    }
}
