//! Offline-resolved decision tree thresholds (Section IV-B of the paper).
//!
//! During random forest inference, every comparison has the shape
//! `feature <= split` where `split` is a constant fixed at training
//! time. Theorem 2 lets a code generator resolve the negative-operand
//! special case *offline*:
//!
//! * **positive (or +0.0) split** — the test compiles to a single signed
//!   integer comparison of the feature's bit pattern against the split's
//!   bit pattern as an integer immediate (Listing 2):
//!   `SI(x) <= SI(split)`;
//! * **negative split** — both operands are "multiplied by −1" by
//!   flipping their sign bits and the comparison is reversed
//!   (Listing 4): `SI(-split) <= SI(x) ^ SIGN_MASK` — one XOR plus one
//!   signed comparison, and `-split` is folded into the immediate;
//! * **`-0.0` split** — rewritten to `+0.0` so that FLInt's
//!   `-0.0 < +0.0` total order coincides with IEEE semantics for every
//!   `<=` decision.
//!
//! [`PreparedThreshold`] is the runtime object a compiled tree node
//! stores; [`PreparedThreshold::le`] is the entire per-node decision.

use crate::bits::{BitInt, FloatBits};
use crate::error::PrepareThresholdError;

/// A decision tree split value, preprocessed per Theorem 2 so that the
/// runtime test `feature <= split` needs at most one XOR and exactly one
/// signed integer comparison.
///
/// Construction rejects NaN (NaN split values cannot be produced by
/// CART training and have no defined ordering). `-0.0` is rewritten to
/// `+0.0`, making every decision bit-identical to the IEEE `<=` a naive
/// float implementation computes — for **all** inputs including `-0.0`
/// features.
///
/// # Examples
///
/// ```
/// use flint_core::PreparedThreshold;
///
/// # fn main() -> Result<(), flint_core::PrepareThresholdError> {
/// // Positive split: direct integer compare (Listing 2).
/// let pos = PreparedThreshold::new(10.074347f32)?;
/// assert!(pos.le(10.074347));
/// assert!(!pos.le(10.1));
///
/// // Negative split: sign-flip form (Listing 4).
/// let neg = PreparedThreshold::new(-2.935417f32)?;
/// assert!(neg.le(-3.0));
/// assert!(!neg.le(-2.9));
/// assert!(!neg.le(0.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PreparedThreshold<F: FloatBits> {
    /// The integer immediate: `SI(split)` for positive splits,
    /// `SI(-split)` (sign bit cleared) for negative splits.
    key: F::Signed,
    /// Whether the feature word's sign bit must be flipped before the
    /// comparison (true exactly for negative splits).
    flip: bool,
}

impl<F: FloatBits> PreparedThreshold<F> {
    /// Prepares a split value for integer-only evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`PrepareThresholdError::NanSplit`] if `split` is NaN.
    pub fn new(split: F) -> Result<Self, PrepareThresholdError> {
        if split.is_nan_value() {
            return Err(PrepareThresholdError::NanSplit);
        }
        let bits = split.to_signed_bits();
        // -0.0 -> +0.0 rewrite: the only pattern that is negative by
        // sign bit yet IEEE-equal to a non-negative value.
        if bits == F::SIGN_MASK_SIGNED {
            return Ok(Self {
                key: F::Signed::ZERO,
                flip: false,
            });
        }
        if bits < F::Signed::ZERO {
            Ok(Self {
                key: bits ^ F::SIGN_MASK_SIGNED, // fold -1 * split offline
                flip: true,
            })
        } else {
            Ok(Self {
                key: bits,
                flip: false,
            })
        }
    }

    /// Evaluates `feature <= split` from the feature's raw bit pattern.
    ///
    /// This is the entire runtime work of one tree node: for positive
    /// splits one signed comparison; for negative splits one XOR plus
    /// one signed comparison. Matches Listings 2 and 4 of the paper
    /// instruction-for-instruction.
    #[inline]
    pub fn le_bits(&self, feature_bits: F::Signed) -> bool {
        if self.flip {
            self.key <= (feature_bits ^ F::SIGN_MASK_SIGNED)
        } else {
            feature_bits <= self.key
        }
    }

    /// Evaluates `feature <= split` on a float value (free bit cast then
    /// [`le_bits`](Self::le_bits)).
    #[inline]
    pub fn le(&self, feature: F) -> bool {
        self.le_bits(feature.to_signed_bits())
    }

    /// Evaluates `feature > split` — the negation of [`le`](Self::le),
    /// i.e. the "go right" decision of a tree node.
    #[inline]
    pub fn gt(&self, feature: F) -> bool {
        !self.le(feature)
    }

    /// The integer immediate stored in the compiled node (the hex
    /// constant of Listings 2/4). For negative splits this is the
    /// pattern of `-split`.
    #[inline]
    pub fn key(&self) -> F::Signed {
        self.key
    }

    /// Whether this node flips the feature's sign bit before comparing
    /// (true exactly for negative split values).
    #[inline]
    pub fn flips_sign(&self) -> bool {
        self.flip
    }

    /// Reconstructs the effective float split value this threshold
    /// tests against (after the `-0.0 -> +0.0` rewrite).
    pub fn split_value(&self) -> F {
        if self.flip {
            F::from_signed_bits(self.key ^ F::SIGN_MASK_SIGNED)
        } else {
            F::from_signed_bits(self.key)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probes() -> [f32; 18] {
        [
            0.0,
            -0.0,
            f32::from_bits(1),
            -f32::from_bits(1),
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            1.0,
            -1.0,
            10.074347,
            -2.935417,
            2.935417,
            10430.507,
            f32::MAX,
            f32::MIN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            0.5,
            -0.5,
        ]
    }

    #[test]
    fn matches_ieee_le_for_all_probe_pairs() {
        // After the -0.0 rewrite, every decision must equal IEEE <=.
        for &split in &probes() {
            let t = PreparedThreshold::new(split).expect("non-NaN");
            for &x in &probes() {
                assert_eq!(
                    t.le(x),
                    x <= split,
                    "le({x}) vs split {split} [{:#010x}]",
                    split.to_bits()
                );
                assert_eq!(t.gt(x), x > split);
            }
        }
    }

    #[test]
    fn negative_zero_split_is_rewritten() {
        let t = PreparedThreshold::new(-0.0f32).expect("non-NaN");
        assert!(!t.flips_sign());
        assert_eq!(t.key(), 0);
        assert_eq!(t.split_value().to_bits(), 0.0f32.to_bits());
        // IEEE: -0.0 <= -0.0 and 0.0 <= -0.0 are both true.
        assert!(t.le(-0.0));
        assert!(t.le(0.0));
        assert!(!t.le(f32::MIN_POSITIVE));
    }

    #[test]
    fn listing4_immediate_reproduced() {
        // Listing 3/4: the split whose pattern is 0xc03bddde (printed as
        // -2.935417) compiles to immediate 0x403bddde with a sign flip
        // on the feature word.
        let split = f32::from_bits(0xc03b_ddde);
        let t = PreparedThreshold::new(split).expect("non-NaN");
        assert!(t.flips_sign());
        assert_eq!(t.key() as u32, 0x403b_ddde);
    }

    #[test]
    fn listing2_immediates_reproduced() {
        // Splits taken from the paper's hex immediates: a positive split
        // must compile to its own bit pattern with no sign flip.
        for imm in [0x4121_3087u32, 0x413f_986e, 0x4622_fa08] {
            let split = f32::from_bits(imm);
            let t = PreparedThreshold::new(split).expect("non-NaN");
            assert!(!t.flips_sign());
            assert_eq!(t.key() as u32, imm);
        }
    }

    #[test]
    fn nan_split_rejected() {
        assert_eq!(
            PreparedThreshold::new(f32::NAN).unwrap_err(),
            PrepareThresholdError::NanSplit
        );
        assert!(PreparedThreshold::new(f64::NAN).is_err());
    }

    #[test]
    fn f64_thresholds_work() {
        let t = PreparedThreshold::new(-2.935417f64).expect("non-NaN");
        assert!(t.flips_sign());
        for x in [-10.0f64, -2.935418, -2.935417, -2.935416, 0.0, 3.0] {
            assert_eq!(t.le(x), x <= -2.935417f64, "x={x}");
        }
    }

    #[test]
    fn split_value_round_trips() {
        for &split in &probes() {
            let t = PreparedThreshold::new(split).expect("non-NaN");
            if split.to_bits() == (-0.0f32).to_bits() {
                assert_eq!(t.split_value().to_bits(), 0.0f32.to_bits());
            } else {
                assert_eq!(t.split_value().to_bits(), split.to_bits());
            }
        }
    }

    #[test]
    fn denormal_boundary_decisions() {
        // Split exactly at the smallest positive denormal.
        let tiny = f32::from_bits(1);
        let t = PreparedThreshold::new(tiny).expect("non-NaN");
        assert!(t.le(0.0));
        assert!(t.le(-0.0));
        assert!(t.le(tiny));
        assert!(!t.le(f32::from_bits(2)));
        // Negative denormal split.
        let nt = PreparedThreshold::new(-tiny).expect("non-NaN");
        assert!(nt.le(-tiny));
        assert!(!nt.le(-0.0));
        assert!(!nt.le(0.0));
    }
}
