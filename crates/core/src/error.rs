//! Error types for threshold preparation.

use core::fmt;

/// Error preparing a decision tree split value for FLInt evaluation.
///
/// # Examples
///
/// ```
/// use flint_core::{PreparedThreshold, PrepareThresholdError};
///
/// let err = PreparedThreshold::new(f32::NAN).unwrap_err();
/// assert_eq!(err, PrepareThresholdError::NanSplit);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PrepareThresholdError {
    /// The split value is NaN; NaN has no ordering and cannot be
    /// produced by CART training on non-NaN data.
    NanSplit,
}

impl fmt::Display for PrepareThresholdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NanSplit => write!(f, "split value is NaN and cannot be ordered"),
        }
    }
}

#[cfg(feature = "std")]
impl std::error::Error for PrepareThresholdError {}
