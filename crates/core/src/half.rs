//! IEEE-754 binary16 ("half precision") support.
//!
//! The paper defines its float format generically for any bit width
//! (Definition 3); `f32` and `f64` are the instances it evaluates.
//! Embedded ML increasingly stores features and thresholds as binary16
//! to halve memory — and since FLInt needs *no arithmetic*, only
//! ordering, a half type without any conversion support suffices for
//! forest inference. [`Half`] is that type: a `u16` bit pattern with
//! the [`FloatBits`] instance (j = 5, x = 10, bias 15), usable with
//! every comparator and [`crate::PreparedThreshold`] in the crate.
//!
//! ```
//! use flint_core::{flint_ge, half::Half, PreparedThreshold};
//!
//! # fn main() -> Result<(), flint_core::PrepareThresholdError> {
//! let a = Half::from_f32(1.5);
//! let b = Half::from_f32(-2.0);
//! assert!(flint_ge(a, b));
//!
//! let node = PreparedThreshold::new(Half::from_f32(0.25))?;
//! assert!(node.le(Half::from_f32(0.25)));
//! assert!(!node.le(Half::from_f32(0.26)));
//! # Ok(())
//! # }
//! ```

use crate::bits::FloatBits;
use crate::compare::ge_bits;

/// An IEEE-754 binary16 value stored as its raw bit pattern.
///
/// Ordering-complete (everything FLInt needs) but deliberately
/// arithmetic-free: converting in and out goes through
/// [`from_f32`](Half::from_f32) / [`to_f32`](Half::to_f32), which are
/// exact in the `Half -> f32` direction and round-to-nearest-even in
/// the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Half(u16);

impl Half {
    /// Positive zero.
    pub const ZERO: Half = Half(0x0000);
    /// Negative zero (distinct pattern; FLInt orders it below
    /// [`Half::ZERO`]).
    pub const NEG_ZERO: Half = Half(0x8000);
    /// Positive infinity.
    pub const INFINITY: Half = Half(0x7c00);
    /// Negative infinity.
    pub const NEG_INFINITY: Half = Half(0xfc00);
    /// Largest finite value (65504).
    pub const MAX: Half = Half(0x7bff);
    /// Smallest positive subnormal.
    pub const MIN_POSITIVE_SUBNORMAL: Half = Half(0x0001);

    /// Wraps a raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Half(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even (values beyond
    /// ±65504 become infinities; NaN stays NaN).
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xff) as i32;
        let man = bits & 0x007f_ffff;
        if exp == 0xff {
            if man == 0 {
                return Half(sign | 0x7c00); // infinity
            }
            // NaN: keep the top 10 payload bits and force the quiet
            // bit — exactly the VCVTPS2PH hardware mapping, so F16C
            // bulk conversions stay bit-identical to this function.
            return Half(sign | 0x7c00 | 0x0200 | ((man >> 13) as u16 & 0x3ff));
        }
        let unbiased = exp - 127;
        if unbiased > 15 {
            return Half(sign | 0x7c00); // overflow -> inf
        }
        if unbiased >= -14 {
            // Normal half: 10 mantissa bits, round the 13 dropped bits.
            let half_exp = (unbiased + 15) as u16;
            let mut half_man = (man >> 13) as u16;
            let dropped = man & 0x1fff;
            if dropped > 0x1000 || (dropped == 0x1000 && half_man & 1 == 1) {
                half_man += 1; // may carry into the exponent — correct
            }
            return Half(sign.wrapping_add((half_exp << 10).wrapping_add(half_man)));
        }
        if unbiased >= -25 {
            // Subnormal half: half_man = full * 2^(unbiased + 1), i.e.
            // shift the 24-bit significand right by -(unbiased) - 1.
            let shift = (-unbiased - 1) as u32;
            let full = man | 0x0080_0000;
            let half_man = (full >> shift) as u16;
            let dropped = full & ((1 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            let rounded = if dropped > halfway || (dropped == halfway && half_man & 1 == 1) {
                half_man + 1
            } else {
                half_man
            };
            return Half(sign | rounded);
        }
        Half(sign) // underflow -> signed zero
    }

    /// Converts to `f32` (exact — every binary16 value is an `f32`).
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 >> 15) << 31;
        let exp = u32::from(self.0 >> 10) & 0x1f;
        let man = u32::from(self.0) & 0x3ff;
        let bits = if exp == 0x1f {
            sign | 0x7f80_0000 | (man << 13) // inf / NaN
        } else if exp == 0 {
            if man == 0 {
                sign // signed zero
            } else {
                // Subnormal: renormalize. A subnormal with its most
                // significant bit at position p encodes 2^(p-24) times a
                // normalized mantissa, i.e. f32 exponent 103 + p where
                // p = 10 - lead.
                // `lead` counts zeros above bit 10.
                let lead = man.leading_zeros() - 21;
                // Shift the MSB up to the implicit-one position (bit
                // 10); the remaining low 10 bits are the fraction.
                let shifted = (man << lead) & 0x3ff;
                let new_exp = 127 - 14 - lead;
                sign | (new_exp << 23) | (shifted << 13)
            }
        } else {
            sign | ((exp + 127 - 15) << 23) | (man << 13)
        };
        f32::from_bits(bits)
    }

    /// `true` for NaN patterns.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7c00) == 0x7c00 && (self.0 & 0x03ff) != 0
    }
}

impl PartialOrd for Half {
    /// IEEE-style partial order via the FLInt comparator (NaN is
    /// unordered; `-0.0 < +0.0` per the paper's convention).
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        if self.is_nan() || other.is_nan() {
            return None;
        }
        let (x, y) = (self.to_signed_bits(), other.to_signed_bits());
        Some(if x == y {
            core::cmp::Ordering::Equal
        } else if ge_bits::<Half>(x, y) {
            core::cmp::Ordering::Greater
        } else {
            core::cmp::Ordering::Less
        })
    }
}

impl FloatBits for Half {
    type Signed = i16;
    type Unsigned = u16;

    const TOTAL_BITS: u32 = 16;
    const EXPONENT_BITS: u32 = 5;
    const MANTISSA_BITS: u32 = 10;
    const BIAS: i32 = 15;
    const SIGN_MASK_SIGNED: i16 = i16::MIN;
    const SIGN_MASK_UNSIGNED: u16 = 0x8000;

    #[inline]
    fn to_signed_bits(self) -> i16 {
        self.0 as i16
    }
    #[inline]
    fn to_unsigned_bits(self) -> u16 {
        self.0
    }
    #[inline]
    fn from_signed_bits(bits: i16) -> Self {
        Half(bits as u16)
    }
    #[inline]
    fn from_unsigned_bits(bits: u16) -> Self {
        Half(bits)
    }
    #[inline]
    fn is_nan_value(self) -> bool {
        self.is_nan()
    }
    #[inline]
    fn biased_exponent(self) -> u32 {
        u32::from(self.0 >> 10) & 0x1f
    }
    #[inline]
    fn mantissa_field(self) -> u64 {
        u64::from(self.0 & 0x3ff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{flint_eq, flint_ge, PreparedThreshold};

    #[test]
    fn conversion_round_trips_all_finite_halves() {
        // Half -> f32 -> Half must be the identity for every non-NaN
        // pattern (f32 represents all binary16 values exactly).
        for bits in 0u16..=u16::MAX {
            let h = Half::from_bits(bits);
            if h.is_nan() {
                assert!(h.to_f32().is_nan());
                continue;
            }
            let back = Half::from_f32(h.to_f32());
            assert_eq!(
                back.to_bits(),
                bits,
                "pattern {bits:#06x} -> {}",
                h.to_f32()
            );
        }
    }

    #[test]
    fn flint_order_matches_f32_order_exhaustively() {
        // All ~6e8 ordered pairs is too much; sweep a structured subset:
        // every 97th pattern plus all exponent boundaries.
        let mut patterns: Vec<u16> = (0u16..=u16::MAX).step_by(97).collect();
        for exp in 0u16..=30 {
            patterns.push(exp << 10);
            patterns.push((exp << 10) | 0x3ff);
            patterns.push(0x8000 | (exp << 10));
        }
        patterns.retain(|&b| !Half::from_bits(b).is_nan());
        for &xb in &patterns {
            for &yb in &patterns {
                let (x, y) = (Half::from_bits(xb), Half::from_bits(yb));
                let (xf, yf) = (x.to_f32(), y.to_f32());
                let want = if xf == yf && xf == 0.0 {
                    !(xb & 0x8000 != 0 && yb & 0x8000 == 0)
                } else {
                    xf >= yf
                };
                assert_eq!(flint_ge(x, y), want, "ge({xf}, {yf})");
                assert_eq!(flint_eq(x, y), xb == yb);
            }
        }
    }

    #[test]
    fn prepared_thresholds_work_on_halves() {
        let patterns: Vec<u16> = (0u16..=u16::MAX)
            .step_by(251)
            .filter(|&b| !Half::from_bits(b).is_nan())
            .collect();
        for &tb in &patterns {
            let split = Half::from_bits(tb);
            let t = PreparedThreshold::new(split).expect("non-NaN");
            for &xb in &patterns {
                let x = Half::from_bits(xb);
                assert_eq!(
                    t.le(x),
                    x.to_f32() <= split.to_f32(),
                    "le({}) vs split {}",
                    x.to_f32(),
                    split.to_f32()
                );
            }
        }
    }

    #[test]
    fn nan_handling() {
        let nan = Half::from_bits(0x7e00);
        assert!(nan.is_nan());
        assert!(PreparedThreshold::new(nan).is_err());
        assert_eq!(nan.partial_cmp(&Half::ZERO), None);
    }

    #[test]
    fn constants_decode_correctly() {
        assert_eq!(Half::ZERO.to_f32(), 0.0);
        assert!(Half::NEG_ZERO.to_f32().is_sign_negative());
        assert_eq!(Half::MAX.to_f32(), 65504.0);
        assert_eq!(Half::INFINITY.to_f32(), f32::INFINITY);
        assert_eq!(Half::NEG_INFINITY.to_f32(), f32::NEG_INFINITY);
        assert_eq!(Half::MIN_POSITIVE_SUBNORMAL.to_f32(), 2f32.powi(-24));
    }

    /// Maps a half bit pattern to a key whose `u16` order is the FLInt
    /// total order (negatives reversed, `-0 < +0`).
    fn total_order_key(bits: u16) -> u16 {
        if bits & 0x8000 != 0 {
            !bits
        } else {
            bits | 0x8000
        }
    }

    #[test]
    fn from_f32_is_monotone_across_every_half_boundary() {
        // `from_f32` is a rounding, so it must be monotone: for every
        // pair of adjacent finite halves (a, b), inputs just below the
        // f32 midpoint land on `a`, inputs just above land on `b`, and
        // the midpoint itself lands on one of the two (ties to even).
        // Exhaustive over all 63 488 non-NaN patterns.
        let mut finite: Vec<Half> = (0u16..=u16::MAX)
            .map(Half::from_bits)
            .filter(|h| !h.is_nan() && h.biased_exponent() != 0x1f)
            .collect();
        finite.sort_by_key(|h| total_order_key(h.to_bits()));
        for pair in finite.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            // The midpoint of two adjacent halves is exact in f32
            // (one extra significand bit is all it needs).
            let mid = (a.to_f32() + b.to_f32()) / 2.0;
            assert_eq!(
                Half::from_f32(mid.next_down()),
                a,
                "below midpoint {mid} must round down to {:#06x}",
                a.to_bits()
            );
            assert_eq!(
                Half::from_f32(mid.next_up()),
                b,
                "above midpoint {mid} must round up to {:#06x}",
                b.to_bits()
            );
            let tie = Half::from_f32(mid);
            assert!(
                tie == a || tie == b,
                "midpoint {mid} escaped its bracket: {:#06x}",
                tie.to_bits()
            );
            assert_eq!(
                tie.to_bits() & 1,
                0,
                "midpoint {mid} must tie to the even neighbor"
            );
        }
    }

    #[test]
    fn from_f32_pins_subnormal_inf_nan_edges() {
        // Subnormal floor: halfway between 0 and the smallest
        // subnormal ties to even (zero); anything above rounds up.
        assert_eq!(Half::from_f32(2f32.powi(-24)), Half::MIN_POSITIVE_SUBNORMAL);
        assert_eq!(Half::from_f32(2f32.powi(-25)), Half::ZERO);
        assert_eq!(
            Half::from_f32(2f32.powi(-25).next_up()),
            Half::MIN_POSITIVE_SUBNORMAL
        );
        assert_eq!(Half::from_f32(-(2f32.powi(-25))), Half::NEG_ZERO);
        // Halfway between subnormals 0x0001 and 0x0002: even wins.
        assert_eq!(Half::from_f32(3.0 * 2f32.powi(-25)).to_bits(), 0x0002);
        // Subnormal/normal seam: the largest subnormal and the
        // smallest normal are adjacent, not overlapping.
        assert_eq!(Half::from_f32(1023.0 * 2f32.powi(-24)).to_bits(), 0x03ff);
        assert_eq!(Half::from_f32(2f32.powi(-14)).to_bits(), 0x0400);
        // Overflow seam: 65520 is halfway between MAX (odd mantissa)
        // and the would-be 65536 — ties-to-even overflows to infinity.
        assert_eq!(Half::from_f32(65520.0f32.next_down()), Half::MAX);
        assert_eq!(Half::from_f32(65520.0), Half::INFINITY);
        assert_eq!(Half::from_f32(-65520.0), Half::NEG_INFINITY);
        assert_eq!(Half::from_f32(f32::INFINITY), Half::INFINITY);
        assert_eq!(Half::from_f32(f32::NEG_INFINITY), Half::NEG_INFINITY);
        // NaN stays NaN (never collapses to infinity), both signs and
        // arbitrary payloads.
        assert!(Half::from_f32(f32::NAN).is_nan());
        assert!(Half::from_f32(-f32::NAN).is_nan());
        assert!(Half::from_f32(f32::from_bits(0x7f80_0001)).is_nan());
        assert!(Half::from_f32(f32::from_bits(0xffc1_2345)).is_nan());
        // The payload mapping is pinned to the VCVTPS2PH hardware rule
        // (top 10 payload bits kept, quiet bit forced) so the F16C
        // bulk conversion path can be bit-identical to this function.
        assert_eq!(
            Half::from_f32(f32::from_bits(0x7fc0_0000)).to_bits(),
            0x7e00
        );
        assert_eq!(
            Half::from_f32(f32::from_bits(0x7f80_2000)).to_bits(),
            0x7e01
        );
        assert_eq!(
            Half::from_f32(f32::from_bits(0xffff_ffff)).to_bits(),
            0xffff
        );
    }

    #[test]
    fn from_f32_rounds_to_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and the next half:
        // ties to even (1.0).
        let halfway = 1.0 + 2f32.powi(-11);
        assert_eq!(Half::from_f32(halfway).to_f32(), 1.0);
        // Slightly above the halfway rounds up.
        let above = 1.0 + 2f32.powi(-11) + 2f32.powi(-20);
        assert_eq!(Half::from_f32(above).to_f32(), 1.0 + 2f32.powi(-10));
        // Overflow saturates to infinity.
        assert_eq!(Half::from_f32(1e6), Half::INFINITY);
        assert_eq!(Half::from_f32(-1e6), Half::NEG_INFINITY);
        // Deep underflow flushes to signed zero.
        assert_eq!(Half::from_f32(1e-10).to_bits(), 0);
        assert_eq!(Half::from_f32(-1e-10).to_bits(), 0x8000);
    }
}
