//! Software float vs hardware float arithmetic cost (supporting the
//! paper's motivation that software floats are expensive on FPU-less
//! targets — here measured on a host as a lower bound on the gap).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flint_softfloat::{soft_add, soft_cmp, soft_mul};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pairs(n: usize) -> Vec<(f32, f32)> {
    let mut rng = StdRng::seed_from_u64(11);
    (0..n)
        .map(|_| (rng.gen_range(-1e6f32..1e6), rng.gen_range(-1e6f32..1e6)))
        .collect()
}

fn bench_softfloat(c: &mut Criterion) {
    let xs = pairs(4096);
    let mut group = c.benchmark_group("softfloat_vs_hardware");
    group.bench_function("hw_add", |b| {
        b.iter(|| {
            xs.iter()
                .map(|&(a, x)| black_box(a) + black_box(x))
                .sum::<f32>()
        })
    });
    group.bench_function("soft_add", |b| {
        b.iter(|| {
            xs.iter()
                .map(|&(a, x)| soft_add(black_box(a), black_box(x)))
                .sum::<f32>()
        })
    });
    group.bench_function("hw_mul", |b| {
        b.iter(|| {
            xs.iter()
                .map(|&(a, x)| black_box(a) * black_box(x))
                .sum::<f32>()
        })
    });
    group.bench_function("soft_mul", |b| {
        b.iter(|| {
            xs.iter()
                .map(|&(a, x)| soft_mul(black_box(a), black_box(x)))
                .sum::<f32>()
        })
    });
    group.bench_function("hw_cmp", |b| {
        b.iter(|| {
            xs.iter()
                .filter(|&&(a, x)| black_box(a) < black_box(x))
                .count()
        })
    });
    group.bench_function("soft_cmp", |b| {
        b.iter(|| {
            xs.iter()
                .filter(|&&(a, x)| {
                    soft_cmp(black_box(a), black_box(x)) == Some(core::cmp::Ordering::Less)
                })
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_softfloat);
criterion_main!(benches);
