//! Host wall-clock counterpart of Fig. 4: the FLInt flat-array
//! implementation (our "C" analog — compiler-optimized Rust) versus the
//! FLInt bytecode VM (the assembly stand-in, paying interpretation
//! overhead per node) across shallow and deep trees. On real hardware
//! the paper finds assembly loses on shallow trees and wins on deep
//! ones; an interpreting VM always pays more per node, so here the
//! interesting quantity is the *ratio trend* with depth, recorded in
//! EXPERIMENTS.md.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use flint_codegen::{VmForest, VmVariant};
use flint_data::train_test_split;
use flint_data::uci::{Scale, UciDataset};
use flint_exec::{BackendKind, CompiledForest};
use flint_forest::{ForestConfig, RandomForest};

fn bench_fig4(c: &mut Criterion) {
    let data = UciDataset::Magic.generate(Scale::Small);
    let split = train_test_split(&data, 0.25, 42);
    let mut group = c.benchmark_group("fig4_host");
    for depth in [1usize, 10, 20] {
        let forest =
            RandomForest::fit(&split.train, &ForestConfig::grid(10, depth)).expect("trainable");
        let flat = CompiledForest::compile(&forest, BackendKind::Flint, None).expect("compilable");
        let vm = VmForest::compile(&forest, VmVariant::Flint);
        group.bench_with_input(
            BenchmarkId::new("flint_flat_c_analog", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    let mut acc = 0u32;
                    for i in 0..split.test.n_samples() {
                        acc = acc.wrapping_add(flat.predict(black_box(split.test.sample(i))));
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("flint_vm_asm_analog", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    let mut acc = 0u32;
                    for i in 0..split.test.n_samples() {
                        let (class, _) = vm.run(black_box(split.test.sample(i))).expect("runs");
                        acc = acc.wrapping_add(class);
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
