//! QuickScorer vs if-else flat trees on the host — the "algorithmic
//! refinement vs architectural optimization" contrast the paper's
//! related-work section draws, with FLInt applied to both.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use flint_data::train_test_split;
use flint_data::uci::{Scale, UciDataset};
use flint_exec::{BackendKind, CompiledForest};
use flint_forest::{ForestConfig, RandomForest};
use flint_qscorer::{QsCompare, QsForest};

fn bench_quickscorer(c: &mut Criterion) {
    let data = UciDataset::Magic.generate(Scale::Small);
    let split = train_test_split(&data, 0.25, 42);
    let rows: Vec<&[f32]> = (0..split.test.n_samples())
        .map(|i| split.test.sample(i))
        .collect();
    let mut group = c.benchmark_group("quickscorer_vs_ifelse");
    for depth in [5usize, 15] {
        let forest =
            RandomForest::fit(&split.train, &ForestConfig::grid(10, depth)).expect("trainable");
        let qs = QsForest::build(&forest);
        let flat = CompiledForest::compile(&forest, BackendKind::Flint, None).expect("compilable");
        group.bench_with_input(BenchmarkId::new("qs_float", depth), &depth, |b, _| {
            b.iter(|| qs.predict_batch(black_box(&rows), QsCompare::Float))
        });
        group.bench_with_input(BenchmarkId::new("qs_flint", depth), &depth, |b, _| {
            b.iter(|| qs.predict_batch(black_box(&rows), QsCompare::Flint))
        });
        group.bench_with_input(BenchmarkId::new("ifelse_flint", depth), &depth, |b, _| {
            b.iter(|| {
                let mut acc = 0u32;
                for row in &rows {
                    acc = acc.wrapping_add(flat.predict(black_box(row)));
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quickscorer);
criterion_main!(benches);
