//! QuickScorer vs if-else flat trees on the host — the "algorithmic
//! refinement vs architectural optimization" contrast the paper's
//! related-work section draws, with FLInt applied to both.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use flint_data::train_test_split;
use flint_data::uci::{Scale, UciDataset};
use flint_data::FeatureMatrix;
use flint_exec::{EngineBuilder, EngineKind};
use flint_forest::{ForestConfig, RandomForest};

fn bench_quickscorer(c: &mut Criterion) {
    let data = UciDataset::Magic.generate(Scale::Small);
    let split = train_test_split(&data, 0.25, 42);
    let matrix = FeatureMatrix::from_dataset(&split.test);
    // The contrast the related-work section draws, as registry engines:
    // QuickScorer's per-feature scans (both comparison modes) against
    // the flat if-else FLInt trees.
    let contrast = ["quickscorer-float", "quickscorer", "flint"]
        .map(|name| EngineKind::parse(name).expect("registered"));
    let mut group = c.benchmark_group("quickscorer_vs_ifelse");
    for depth in [5usize, 15] {
        let forest =
            RandomForest::fit(&split.train, &ForestConfig::grid(10, depth)).expect("trainable");
        let builder = EngineBuilder::new(&forest);
        for kind in contrast {
            let engine = builder.build(kind).expect("builds");
            group.bench_with_input(BenchmarkId::new(kind.name(), depth), &depth, |b, _| {
                b.iter(|| engine.predict_matrix(black_box(&matrix)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_quickscorer);
criterion_main!(benches);
