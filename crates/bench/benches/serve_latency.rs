//! Serving latency two ways — the data behind the "Serving latency"
//! and "Open-loop serving" sections of EXPERIMENTS.md.
//!
//! 1. **Closed loop** against the bare micro-batcher: batch-size cap vs
//!    p50/p99/p999 and throughput, with a coordinated-omission caution
//!    when latency stalls distorted the send schedule.
//! 2. **Open loop** over real TCP against *both* serving front ends
//!    (`epoll` event loop and `threads` baseline) at the same fixed
//!    offered rate: requests depart on a virtual-time schedule and
//!    every latency is charged from its **intended** send time, so a
//!    backed-up server shows up in the tail instead of hiding in a
//!    stretched schedule.
//!
//! Plain `main` (no criterion): the quantity of interest is the latency
//! *distribution* of concurrent requests, not the mean runtime of a hot
//! loop.
//!
//! ```text
//! cargo bench -p flint-bench --bench serve_latency
//! cargo bench -p flint-bench --bench serve_latency -- \
//!     --rate 2000 --requests 8000 --conns 8 --json BENCH_serve.json
//! ```

use flint_bench::loadgen::{closed_loop, open_loop, OpenLoopReport, OpenLoopSpec};
use flint_data::train_test_split;
use flint_data::uci::{Scale, UciDataset};
use flint_exec::{BatchOptions, EngineBuilder, EngineKind, KernelCaps};
use flint_forest::{ForestConfig, RandomForest};
use flint_serve::{BatchPolicy, Batcher, EpollServer, FrontEnd, Server};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

struct Args {
    rate_rps: f64,
    requests: usize,
    conns: usize,
    json_path: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        rate_rps: 2000.0,
        requests: 6000,
        conns: 8,
        json_path: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--rate" => args.rate_rps = value("--rate").parse().expect("numeric --rate"),
            "--requests" => {
                args.requests = value("--requests").parse().expect("numeric --requests")
            }
            "--conns" => args.conns = value("--conns").parse().expect("numeric --conns"),
            "--json" => args.json_path = Some(value("--json")),
            "--bench" => {} // cargo bench passes this through
            other => panic!("unknown flag {other} (valid: --rate --requests --conns --json)"),
        }
    }
    args
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|rev| rev.trim().to_owned())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Serves one open-loop run over TCP on the chosen front end, then
/// shuts the server down.
fn open_loop_against(
    front_end: FrontEnd,
    forest: &RandomForest,
    kind: EngineKind,
    max_batch: usize,
    rows: &[Vec<f32>],
    spec: OpenLoopSpec,
) -> OpenLoopReport {
    let engine = EngineBuilder::new(forest)
        .options(BatchOptions::default().block_samples(max_batch))
        .build(kind)
        .expect("builds");
    let policy = BatchPolicy::default()
        .max_batch(max_batch)
        .linger(Duration::from_micros(200))
        .workers(2);
    let (addr, runner): (SocketAddr, std::thread::JoinHandle<()>) = match front_end {
        FrontEnd::Epoll => {
            let server = EpollServer::bind("127.0.0.1:0", engine, policy).expect("binds loopback");
            let addr = server.local_addr();
            (
                addr,
                std::thread::spawn(move || {
                    server.run().expect("serves");
                }),
            )
        }
        FrontEnd::Threads => {
            let server = Server::bind("127.0.0.1:0", engine, policy).expect("binds loopback");
            let addr = server.local_addr();
            (
                addr,
                std::thread::spawn(move || {
                    server.run().expect("serves");
                }),
            )
        }
    };
    let report = open_loop(addr, rows, spec).expect("open loop runs");
    let mut admin = TcpStream::connect(addr).expect("connects for shutdown");
    admin.write_all(b"shutdown\n").expect("requests shutdown");
    runner.join().expect("server thread");
    report
}

/// Serves one open-loop run through the fan-out/merge router over two
/// in-process epoll shards (the forest split into contiguous tree
/// spans), then shuts the tier down. Linux only (the shards are epoll
/// servers).
#[cfg(target_os = "linux")]
fn open_loop_against_router(
    forest: &RandomForest,
    kind: EngineKind,
    max_batch: usize,
    rows: &[Vec<f32>],
    spec: OpenLoopSpec,
) -> OpenLoopReport {
    let mut shards = Vec::new();
    for (start, end) in forest.plan_spans(2) {
        let part = forest.tree_span(start, end);
        let engine = EngineBuilder::new(&part)
            .options(BatchOptions::default().block_samples(max_batch))
            .build(kind)
            .expect("builds");
        let policy = BatchPolicy::default()
            .max_batch(max_batch)
            .linger(Duration::from_micros(200))
            .workers(2);
        let server = EpollServer::bind("127.0.0.1:0", engine, policy).expect("binds loopback");
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || {
            server.run().expect("shard serves");
        });
        shards.push((addr, runner));
    }
    let shard_addrs: Vec<SocketAddr> = shards.iter().map(|(a, _)| *a).collect();
    let router =
        flint_router::RouterServer::bind("127.0.0.1:0", shard_addrs).expect("router binds");
    let addr = router.local_addr();
    let runner = std::thread::spawn(move || {
        router.run().expect("routes");
    });
    let report = open_loop(addr, rows, spec).expect("open loop runs");
    let mut admin = TcpStream::connect(addr).expect("connects for shutdown");
    admin.write_all(b"shutdown\n").expect("requests shutdown");
    runner.join().expect("router thread");
    for (addr, runner) in shards {
        let mut admin = TcpStream::connect(addr).expect("connects for shutdown");
        admin.write_all(b"shutdown\n").expect("requests shutdown");
        runner.join().expect("shard thread");
    }
    report
}

fn main() {
    let args = parse_args();
    let clients = 8;
    let per_client = 250;
    let max_batch_serving = 64;
    let data = UciDataset::Magic.generate(Scale::Small);
    let split = train_test_split(&data, 0.25, 42);
    let forest = RandomForest::fit(&split.train, &ForestConfig::grid(24, 16)).expect("trainable");
    let rows: Vec<Vec<f32>> = (0..split.test.n_samples())
        .map(|i| split.test.sample(i).to_vec())
        .collect();
    let kind = EngineKind::parse("flint-blocked").expect("registered");

    println!(
        "serve_latency: {} closed-loop clients x {per_client} requests, {} trees, \
         engine {kind}, 2 workers, linger 200us",
        clients,
        forest.n_trees()
    );
    println!(
        "{:>9} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "max_batch", "req/s", "mean fill", "p50 us", "p99 us", "p999 us", "max us"
    );
    for max_batch in [1usize, 8, 64] {
        let engine = EngineBuilder::new(&forest)
            .options(BatchOptions::default().block_samples(max_batch))
            .build(kind)
            .expect("builds");
        let policy = BatchPolicy::default()
            .max_batch(max_batch)
            .linger(Duration::from_micros(200))
            .workers(2);
        let batcher = Batcher::start(engine, policy);
        let report = closed_loop(&batcher, &rows, clients, per_client);
        batcher.shutdown();
        println!(
            "{:>9} {:>10.0} {:>10.2} {:>9} {:>9} {:>9} {:>9}",
            max_batch,
            report.requests_per_sec,
            report.mean_fill,
            report.latency.p50_us,
            report.latency.p99_us,
            report.latency.p999_us,
            report.latency.max_us
        );
        if let Some(warning) = report.coordinated_omission_warning() {
            println!("          ({warning})");
        }
    }
    println!(
        "(closed loop: one request in flight per client, so offered concurrency = {clients};\n\
         max_batch 1 shows per-request dispatch overhead, larger caps amortize it)"
    );

    let spec = OpenLoopSpec {
        rate_rps: args.rate_rps,
        total_requests: args.requests,
        connections: args.conns,
        catch_up_factor: 2.0,
    };
    println!();
    println!(
        "open loop over TCP: {} requests offered at {:.0} req/s across {} connections, \
         max_batch {max_batch_serving} (latency from intended send time — \
         coordinated-omission-safe)",
        spec.total_requests, spec.rate_rps, spec.connections
    );
    println!(
        "{:>9} {:>11} {:>11} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "front_end", "offered r/s", "achieved", "p50 us", "p99 us", "p999 us", "max us", "errors"
    );
    let mut measured: Vec<(&str, OpenLoopReport)> = Vec::new();
    for front_end in FrontEnd::ALL {
        if front_end == FrontEnd::Epoll && !cfg!(target_os = "linux") {
            println!("{:>9} (skipped: epoll needs Linux)", front_end.name());
            continue;
        }
        let report = open_loop_against(front_end, &forest, kind, max_batch_serving, &rows, spec);
        println!(
            "{:>9} {:>11.0} {:>11.0} {:>9} {:>9} {:>9} {:>9} {:>7}",
            front_end.name(),
            report.offered_rps,
            report.achieved_rps,
            report.latency.p50_us,
            report.latency.p99_us,
            report.latency.p999_us,
            report.latency.max_us,
            report.errors
        );
        measured.push((front_end.name(), report));
    }
    // The sharded tier: the same offered load through the fan-out
    // router over two tree-span shards — the p50/p99 delta vs `epoll`
    // is the price of one extra hop plus the histogram merge.
    #[cfg(target_os = "linux")]
    {
        let report = open_loop_against_router(&forest, kind, max_batch_serving, &rows, spec);
        println!(
            "{:>9} {:>11.0} {:>11.0} {:>9} {:>9} {:>9} {:>9} {:>7}",
            "router",
            report.offered_rps,
            report.achieved_rps,
            report.latency.p50_us,
            report.latency.p99_us,
            report.latency.p999_us,
            report.latency.max_us,
            report.errors
        );
        measured.push(("router", report));
    }
    #[cfg(not(target_os = "linux"))]
    println!("{:>9} (skipped: router shards need epoll/Linux)", "router");
    println!("(achieved < offered means the server could not absorb the schedule)");

    if let Some(path) = args.json_path {
        let rows_json: Vec<String> = measured
            .iter()
            .map(|(front_end, r)| {
                format!(
                    "{{\"front_end\":\"{}\",\"offered_rps\":{:.0},\"achieved_rps\":{:.0},\
                     \"responses\":{},\"errors\":{},\"p50_us\":{},\"p99_us\":{},\
                     \"p999_us\":{},\"max_us\":{}}}",
                    front_end,
                    r.offered_rps,
                    r.achieved_rps,
                    r.responses,
                    r.errors,
                    r.latency.p50_us,
                    r.latency.p99_us,
                    r.latency.p999_us,
                    r.latency.max_us
                )
            })
            .collect();
        let json = format!(
            "{{\"schema\":\"flint-bench/2\",\"kernel_caps\":\"{}\",\"git_rev\":\"{}\",\
             \"shape\":\"serve-open-loop\",\
             \"workload\":{{\"requests\":{},\"rate_rps\":{:.0},\"connections\":{},\
             \"features\":{},\"trees\":{},\"max_batch\":{},\"workers\":2}},\
             \"front_ends\":[{}]}}\n",
            KernelCaps::get().summary(),
            git_rev(),
            spec.total_requests,
            spec.rate_rps,
            spec.connections,
            split.test.n_features(),
            forest.n_trees(),
            max_batch_serving,
            rows_json.join(",")
        );
        std::fs::write(&path, json).expect("writes the JSON snapshot");
        println!("wrote {path}");
    }
}
