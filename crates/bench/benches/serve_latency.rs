//! Serving latency under closed-loop load: batch-size cap vs p50/p99
//! request latency and throughput through the `flint-serve`
//! micro-batcher — the data behind the "Serving latency" section of
//! EXPERIMENTS.md.
//!
//! Plain `main` (no criterion): the quantity of interest is the
//! latency *distribution* of concurrent requests, not the mean runtime
//! of a hot loop.
//!
//! ```text
//! cargo bench -p flint-bench --bench serve_latency
//! ```

use flint_bench::loadgen::closed_loop;
use flint_data::train_test_split;
use flint_data::uci::{Scale, UciDataset};
use flint_exec::{BatchOptions, EngineBuilder, EngineKind};
use flint_forest::{ForestConfig, RandomForest};
use flint_serve::{BatchPolicy, Batcher};
use std::time::Duration;

fn main() {
    let clients = 8;
    let per_client = 250;
    let data = UciDataset::Magic.generate(Scale::Small);
    let split = train_test_split(&data, 0.25, 42);
    let forest = RandomForest::fit(&split.train, &ForestConfig::grid(24, 16)).expect("trainable");
    let rows: Vec<Vec<f32>> = (0..split.test.n_samples())
        .map(|i| split.test.sample(i).to_vec())
        .collect();
    let kind = EngineKind::parse("flint-blocked").expect("registered");

    println!(
        "serve_latency: {} closed-loop clients x {per_client} requests, {} trees, \
         engine {kind}, 2 workers, linger 200us",
        clients,
        forest.n_trees()
    );
    println!(
        "{:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "max_batch", "req/s", "mean fill", "p50 us", "p99 us", "max us"
    );
    for max_batch in [1usize, 8, 64] {
        let engine = EngineBuilder::new(&forest)
            .options(BatchOptions::default().block_samples(max_batch))
            .build(kind)
            .expect("builds");
        let policy = BatchPolicy::default()
            .max_batch(max_batch)
            .linger(Duration::from_micros(200))
            .workers(2);
        let batcher = Batcher::start(engine, policy);
        let report = closed_loop(&batcher, &rows, clients, per_client);
        batcher.shutdown();
        println!(
            "{:>9} {:>10.0} {:>10.2} {:>10} {:>10} {:>10}",
            max_batch,
            report.requests_per_sec,
            report.mean_fill,
            report.latency.p50_us,
            report.latency.p99_us,
            report.latency.max_us
        );
    }
    println!(
        "(closed loop: one request in flight per client, so offered concurrency = {clients};\n\
         max_batch 1 shows per-request dispatch overhead, larger caps amortize it)"
    );
}
