//! Micro-benchmark of the comparison operators themselves (ablation A2
//! in DESIGN.md): hardware float `<=`, FLInt Theorem 1 (XOR form),
//! FLInt Theorem 2 (offline-prepared threshold), and the software float
//! comparison — the per-node costs whose differences drive every other
//! result.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flint_core::compare::{ge_bits, ge_bits_sign_flip};
use flint_core::{FloatBits, PreparedThreshold};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn inputs(n: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..n).map(|_| rng.gen_range(-100.0f32..100.0)).collect()
}

fn bench_compare(c: &mut Criterion) {
    let xs = inputs(4096);
    let threshold = -2.935417f32;
    let prepared = PreparedThreshold::new(threshold).expect("non-NaN");
    let threshold_bits = threshold.to_signed_bits();

    let mut group = c.benchmark_group("single_comparison");
    group.bench_function("hardware_float_le", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &x in &xs {
                acc += u32::from(black_box(x) <= threshold);
            }
            acc
        })
    });
    group.bench_function("flint_theorem1_xor_form", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &x in &xs {
                acc += u32::from(ge_bits::<f32>(
                    threshold_bits,
                    black_box(x).to_signed_bits(),
                ));
            }
            acc
        })
    });
    group.bench_function("flint_theorem2_runtime_sign_test", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &x in &xs {
                acc += u32::from(ge_bits_sign_flip::<f32>(
                    threshold_bits,
                    black_box(x).to_signed_bits(),
                ));
            }
            acc
        })
    });
    group.bench_function("flint_prepared_threshold", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &x in &xs {
                acc += u32::from(prepared.le(black_box(x)));
            }
            acc
        })
    });
    group.bench_function("softfloat_le", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &x in &xs {
                acc += u32::from(flint_softfloat::soft_le(black_box(x), threshold));
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_compare);
criterion_main!(benches);
