//! Throughput of the batch inference engine versus the scalar
//! one-sample-at-a-time loop, for every backend configuration of the
//! paper's evaluation.
//!
//! Three shapes per backend:
//!
//! * `scalar`          — `CompiledForest::predict_dataset` (per-sample
//!   vote allocation, whole forest streamed per sample);
//! * `blocked`         — `BatchEngine`, tree-block × sample-block
//!   traversal with reused scratch, one thread;
//! * `blocked+threads` — the same with 4 scoped worker threads.
//!
//! The forest is deliberately deep (many more node bytes than L2) so
//! the cache-blocking effect is visible even on a single core; on
//! multi-core hosts the threaded row adds near-linear scaling on top.
//! Equivalence of all three paths is asserted before timing — a
//! benchmark of a wrong result is worthless.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use flint_data::train_test_split;
use flint_data::uci::{Scale, UciDataset};
use flint_data::FeatureMatrix;
use flint_exec::{BackendKind, BatchEngine, BatchOptions, CompiledForest};
use flint_forest::{ForestConfig, RandomForest};

fn bench_batch(c: &mut Criterion) {
    let data = UciDataset::Magic.generate(Scale::Small);
    let split = train_test_split(&data, 0.25, 42);
    let forest = RandomForest::fit(&split.train, &ForestConfig::grid(24, 16)).expect("trainable");
    let matrix = FeatureMatrix::from_dataset(&split.test);
    let n = split.test.n_samples();

    let mut group = c.benchmark_group("batch_throughput");
    for kind in BackendKind::PAPER_SET {
        let backend =
            CompiledForest::compile(&forest, kind, Some(&split.train)).expect("compilable");
        let blocked = BatchEngine::new(&backend, BatchOptions::default());
        let threaded = BatchEngine::new(&backend, BatchOptions::default().threads(4));

        let reference = backend.predict_dataset(&split.test);
        assert_eq!(blocked.predict(&matrix), reference, "blocked diverges");
        assert_eq!(threaded.predict(&matrix), reference, "threaded diverges");

        let name = kind.name().replace(' ', "_");
        group.bench_with_input(BenchmarkId::new(format!("{name}/scalar"), n), &n, |b, _| {
            b.iter(|| backend.predict_dataset(black_box(&split.test)))
        });
        group.bench_with_input(
            BenchmarkId::new(format!("{name}/blocked"), n),
            &n,
            |b, _| b.iter(|| blocked.predict(black_box(&matrix))),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{name}/blocked+threads4"), n),
            &n,
            |b, _| b.iter(|| threaded.predict(black_box(&matrix))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
