//! Throughput of every registered inference engine over one fixed
//! workload, driven by the `flint-exec` engine registry instead of
//! hand-rolled per-backend match arms.
//!
//! Rows are the registry ([`EngineKind::ALL`]): the five if-else
//! configurations scalar and blocked, QuickScorer in both comparison
//! modes, and the three instruction-level VM variants (the VM rows are
//! interpreter-slow by design — they model the assembly backend for the
//! cost simulator — but they are real prediction paths and belong in
//! the same table). The blocked FLInt engine additionally gets a
//! 4-thread row, the shape the serving front end will use.
//!
//! The forest is deliberately deep (many more node bytes than L2) so
//! the cache-blocking effect is visible even on a single core.
//! Equivalence of every path against the forest's majority vote is
//! asserted before timing — a benchmark of a wrong result is worthless.
//!
//! `flint bench` reproduces this table without cargo/criterion via
//! [`flint_bench::batch_throughput_table`].

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use flint_data::train_test_split;
use flint_data::uci::{Scale, UciDataset};
use flint_data::FeatureMatrix;
use flint_exec::{BatchOptions, EngineBuilder, EngineKind};
use flint_forest::{ForestConfig, RandomForest};

fn bench_batch(c: &mut Criterion) {
    let data = UciDataset::Magic.generate(Scale::Small);
    let split = train_test_split(&data, 0.25, 42);
    let forest = RandomForest::fit(&split.train, &ForestConfig::grid(24, 16)).expect("trainable");
    let matrix = FeatureMatrix::from_dataset(&split.test);
    let n = split.test.n_samples();
    let reference = forest.predict_dataset_majority(&split.test);
    let builder = EngineBuilder::new(&forest).profile_data(&split.train);

    let mut group = c.benchmark_group("batch_throughput");
    for kind in EngineKind::ALL {
        let engine = builder.build(kind).expect("registered engines build");
        assert_eq!(engine.predict_matrix(&matrix), reference, "{kind} diverges");
        group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, _| {
            b.iter(|| engine.predict_matrix(black_box(&matrix)))
        });
    }

    // The serving shape: blocked FLInt with a worker pool.
    let threaded = builder
        .options(BatchOptions::default().threads(4))
        .build(EngineKind::parse("flint-blocked").expect("registered"))
        .expect("builds");
    assert_eq!(threaded.predict_matrix(&matrix), reference);
    group.bench_with_input(BenchmarkId::new("flint-blocked+threads4", n), &n, |b, _| {
        b.iter(|| threaded.predict_matrix(black_box(&matrix)))
    });
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
