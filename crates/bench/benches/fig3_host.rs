//! Host wall-clock counterpart of Fig. 3: the four backend
//! configurations (Naive, CAGS, FLInt, CAGS+FLInt) across a depth
//! sweep on one UCI-shaped dataset. Reports per-batch time; the
//! paper's claim is that FLInt ≲ 0.85× naive and CAGS(FLInt) is the
//! fastest for deep trees.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use flint_data::train_test_split;
use flint_data::uci::{Scale, UciDataset};
use flint_exec::{BackendKind, CompiledForest};
use flint_forest::{ForestConfig, RandomForest};

fn bench_fig3(c: &mut Criterion) {
    let data = UciDataset::Magic.generate(Scale::Small);
    let split = train_test_split(&data, 0.25, 42);
    let mut group = c.benchmark_group("fig3_host");
    for depth in [5usize, 20] {
        let forest =
            RandomForest::fit(&split.train, &ForestConfig::grid(20, depth)).expect("trainable");
        for kind in BackendKind::PAPER_SET {
            let backend =
                CompiledForest::compile(&forest, kind, Some(&split.train)).expect("compilable");
            group.bench_with_input(
                BenchmarkId::new(kind.name().replace(' ', "_"), depth),
                &depth,
                |b, _| {
                    b.iter(|| {
                        let mut acc = 0u32;
                        for i in 0..split.test.n_samples() {
                            acc =
                                acc.wrapping_add(backend.predict(black_box(split.test.sample(i))));
                        }
                        acc
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
