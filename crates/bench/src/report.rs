//! Plain-text rendering of the paper's tables and figures.

use crate::experiments::{
    aggregate, fig2_series, fig3_series, train_grid, DepthPoint, GridPoint, GridScale,
};
use flint_sim::{simulate_forest, Machine, SimConfig};
use std::fmt::Write;

/// Renders Table I (machine details) with the cost-model substitution
/// noted.
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE I: MACHINE DETAILS FOR EVALUATION (simulated cost models)"
    );
    let _ = writeln!(
        out,
        "{:<10} {:<22} {:<26} {:<12} {:<16}",
        "Machine", "System", "CPU", "RAM", "Linux kernel"
    );
    for m in Machine::PAPER_SET {
        let (sys, cpu, ram, kernel) = m.table1_row();
        let _ = writeln!(
            out,
            "{:<10} {:<22} {:<26} {:<12} {:<16}",
            m.name(),
            sys,
            cpu,
            ram,
            kernel
        );
    }
    let (sys, cpu, ram, kernel) = Machine::EmbeddedNoFpu.table1_row();
    let _ = writeln!(
        out,
        "{:<10} {:<22} {:<26} {:<12} {:<16}",
        "Embedded", sys, cpu, ram, kernel
    );
    out
}

/// Renders the Fig. 2 data series (SI vs FP for sampled 32-bit
/// patterns) as a two-column listing plus a coarse ASCII plot.
pub fn fig2(n_points: usize) -> String {
    let series = fig2_series(n_points);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIG 2: signed integer (x) vs floating point (y) for sampled 32-bit vectors"
    );
    let _ = writeln!(out, "{:>12}  {:>14}", "SI(B)", "FP(B)");
    let stride = (series.len() / 32).max(1);
    for (si, fp) in series.iter().step_by(stride) {
        let _ = writeln!(out, "{si:>12}  {fp:>14.6e}");
    }
    let _ = writeln!(
        out,
        "(V-shape: FP decreases over negative SI, increases over non-negative SI)"
    );
    out
}

/// Renders one machine's Fig. 3 panel.
pub fn fig3_panel(machine: Machine, grid: &[GridPoint]) -> String {
    let configs = [
        SimConfig::cags(),
        SimConfig::flint(),
        SimConfig::cags_flint(),
    ];
    let series = fig3_series(machine, grid, &configs).expect("paper machines have FPUs");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIG 3 ({}): normalized execution time vs maximal tree depth",
        machine.name()
    );
    let _ = writeln!(
        out,
        "{:<6} {:>8} {:>18} {:>12} {:>18}",
        "depth", "Naive", "CAGS (var)", "FLInt (var)", "CAGS-FLInt (var)"
    );
    let depths: Vec<usize> = series
        .values()
        .next()
        .map(|s| s.iter().map(|p| p.max_depth).collect())
        .unwrap_or_default();
    let find = |name: &str, depth: usize| -> DepthPoint {
        series[name]
            .iter()
            .find(|p| p.max_depth == depth)
            .copied()
            .expect("depth present in every series")
    };
    for depth in depths {
        let cags = find("CAGS", depth);
        let flint = find("FLInt", depth);
        let both = find("CAGS (FLInt)", depth);
        let _ = writeln!(
            out,
            "{:<6} {:>8.3} {:>11.3} ({:.3}) {:>6.3} ({:.3}) {:>10.3} ({:.3})",
            depth,
            1.0,
            cags.mean,
            cags.variance,
            flint.mean,
            flint.variance,
            both.mean,
            both.variance
        );
    }
    out
}

/// Renders Table II (average normalized execution times, all and
/// D ≥ 20, per machine).
pub fn table2(grid: &[GridPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE II: AVERAGE (GEOMETRIC MEAN) NORMALIZED EXECUTION TIME"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>8} {:>8} {:>8}",
        "", "X86 S", "X86 D", "ARMv8 S", "ARMv8 D"
    );
    let configs = [
        ("CAGS", SimConfig::cags()),
        ("FLInt", SimConfig::flint()),
        ("CAGS (FLInt)", SimConfig::cags_flint()),
    ];
    for (label, config) in configs {
        let mut overall_row = format!("{label:<22}");
        let mut deep_row = format!("{:<22}", format!("{label} (D>=20)"));
        for machine in Machine::PAPER_SET {
            let row = aggregate(machine, grid, &config).expect("paper machines have FPUs");
            let _ = write!(overall_row, " {:>7.2}x", row.overall);
            let _ = write!(deep_row, " {:>7.2}x", row.deep);
        }
        let _ = writeln!(out, "{overall_row}");
        let _ = writeln!(out, "{deep_row}");
    }
    out
}

/// Renders Fig. 4 (FLInt C vs FLInt ASM on the X86 server) as a depth
/// series of normalized times.
pub fn fig4(grid: &[GridPoint]) -> String {
    let machine = Machine::X86Server;
    let configs = [SimConfig::flint(), SimConfig::flint_asm()];
    let series = fig3_series(machine, grid, &configs).expect("X86 server has an FPU");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIG 4 ({}): FLInt C vs FLInt ASM, normalized to naive",
        machine.name()
    );
    let _ = writeln!(out, "{:<6} {:>10} {:>10}", "depth", "FLInt C", "FLInt ASM");
    for point in &series["FLInt"] {
        let asm = series["FLInt ASM"]
            .iter()
            .find(|p| p.max_depth == point.max_depth)
            .expect("same depths");
        let _ = writeln!(
            out,
            "{:<6} {:>10.3} {:>10.3}",
            point.max_depth, point.mean, asm.mean
        );
    }
    out
}

/// Renders Table III (FLInt ASM aggregates per machine).
pub fn table3(grid: &[GridPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE III: AVERAGE NORMALIZED EXECUTION TIME, ASSEMBLY IMPLEMENTATION"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>8} {:>8} {:>8}",
        "", "X86 S", "X86 D", "ARMv8 S", "ARMv8 D"
    );
    let mut overall_row = format!("{:<22}", "FLInt ASM");
    let mut deep_row = format!("{:<22}", "FLInt ASM (D>=20)");
    for machine in Machine::PAPER_SET {
        let row = aggregate(machine, grid, &SimConfig::flint_asm()).expect("has FPU");
        let _ = write!(overall_row, " {:>7.2}x", row.overall);
        let _ = write!(deep_row, " {:>7.2}x", row.deep);
    }
    let _ = writeln!(out, "{overall_row}");
    let _ = writeln!(out, "{deep_row}");
    out
}

/// Renders the no-FPU ablation (our addition): softfloat vs FLInt C vs
/// FLInt ASM cycles on the embedded profile.
pub fn ablation_nofpu(grid: &[GridPoint]) -> String {
    let machine = Machine::EmbeddedNoFpu;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ABLATION (ours): cycles per inference on {} (naive floats impossible)",
        machine.name()
    );
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>14} {:>14} {:>10}",
        "depth", "SoftFloat", "FLInt C", "FLInt ASM", "speedup"
    );
    // One representative dataset, middle ensemble size.
    let points: Vec<&GridPoint> = grid
        .iter()
        .filter(|p| p.dataset == flint_data::uci::UciDataset::Magic && p.n_trees == 10)
        .collect();
    for point in points {
        let soft = simulate_forest(
            machine,
            &point.forest,
            &point.split.train,
            &point.split.test,
            &SimConfig::softfloat(),
        )
        .expect("softfloat runs without FPU");
        let flint = simulate_forest(
            machine,
            &point.forest,
            &point.split.train,
            &point.split.test,
            &SimConfig::flint(),
        )
        .expect("flint runs without FPU");
        let asm = simulate_forest(
            machine,
            &point.forest,
            &point.split.train,
            &point.split.test,
            &SimConfig::flint_asm(),
        )
        .expect("flint asm runs without FPU");
        let _ = writeln!(
            out,
            "{:<10} {:>14.1} {:>14.1} {:>14.1} {:>9.1}x",
            point.max_depth,
            soft.cycles_per_inference(),
            flint.cycles_per_inference(),
            asm.cycles_per_inference(),
            soft.cycles_per_inference() / flint.cycles_per_inference(),
        );
    }
    out
}

/// Renders the block-size ablation (our addition, the paper's
/// future-work knob: "the assumptions about available cache sizes can
/// be adjusted"): CAGS(FLInt) normalized time as a function of the
/// grouping block size.
pub fn ablation_blocksize(grid: &[GridPoint]) -> String {
    use flint_layout::LayoutStrategy;
    use flint_sim::ImplStyle;
    let machine = Machine::X86Server;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ABLATION (ours): CAGS(FLInt) on {} vs grouping block size",
        machine.name()
    );
    let _ = writeln!(out, "{:<12} {:>16}", "block_nodes", "normalized time");
    for block_nodes in [1usize, 2, 4, 8, 16] {
        let config = flint_sim::SimConfig {
            variant: flint_codegen::VmVariant::Flint,
            layout: LayoutStrategy::Cags { block_nodes },
            style: ImplStyle::C,
        };
        let row = aggregate(machine, grid, &config).expect("has FPU");
        let _ = writeln!(out, "{block_nodes:<12} {:>15.3}x", row.overall);
    }
    out
}

/// Runs every figure and table at the given grid scale.
pub fn full_report(scale: GridScale) -> String {
    let grid = train_grid(scale);
    let mut out = String::new();
    out.push_str(&table1());
    out.push('\n');
    out.push_str(&fig2(65536));
    out.push('\n');
    for machine in Machine::PAPER_SET {
        out.push_str(&fig3_panel(machine, &grid));
        out.push('\n');
    }
    out.push_str(&table2(&grid));
    out.push('\n');
    out.push_str(&fig4(&grid));
    out.push('\n');
    out.push_str(&table3(&grid));
    out.push('\n');
    out.push_str(&ablation_nofpu(&grid));
    out.push('\n');
    out.push_str(&ablation_blocksize(&grid));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_data::train_test_split;
    use flint_data::uci::{Scale, UciDataset};
    use flint_data::TrainTestSplit;
    use flint_forest::{ForestConfig, RandomForest};

    #[test]
    fn table1_contains_all_machines() {
        let t = table1();
        for name in [
            "X86 S",
            "X86 D",
            "ARMv8 S",
            "ARMv8 D",
            "EPYC",
            "ThunderX2",
            "M1",
        ] {
            assert!(t.contains(name), "missing {name}:\n{t}");
        }
    }

    #[test]
    fn fig2_report_mentions_v_shape() {
        let f = fig2(1024);
        assert!(f.contains("V-shape"));
        assert!(f.lines().count() > 10);
    }

    fn micro_grid() -> Vec<GridPoint> {
        let data = UciDataset::Magic.generate(Scale::Tiny);
        let split = train_test_split(&data, 0.25, 42);
        [(10usize, 5usize), (10, 25)]
            .iter()
            .map(|&(n_trees, max_depth)| {
                let forest =
                    RandomForest::fit(&split.train, &ForestConfig::grid(n_trees, max_depth))
                        .expect("trains");
                GridPoint {
                    dataset: UciDataset::Magic,
                    n_trees,
                    max_depth,
                    split: TrainTestSplit {
                        train: split.train.clone(),
                        test: split.test.clone(),
                    },
                    forest,
                }
            })
            .collect()
    }

    #[test]
    fn table2_renders_all_configurations() {
        let grid = micro_grid();
        let t = table2(&grid);
        for label in ["CAGS", "FLInt", "CAGS (FLInt)", "(D>=20)"] {
            assert!(t.contains(label), "missing {label}:\n{t}");
        }
        // Six data rows (three configs × overall/deep) plus two headers.
        assert_eq!(t.lines().count(), 8, "{t}");
    }

    #[test]
    fn fig3_panel_has_one_row_per_depth() {
        let grid = micro_grid();
        let panel = fig3_panel(Machine::X86Server, &grid);
        assert!(panel.contains("FIG 3"));
        // Two depths in the micro grid -> two data rows + two headers.
        assert_eq!(panel.lines().count(), 4, "{panel}");
    }

    #[test]
    fn fig4_and_table3_render() {
        let grid = micro_grid();
        let f = fig4(&grid);
        assert!(f.contains("FLInt ASM"));
        assert_eq!(f.lines().count(), 4, "{f}");
        let t = table3(&grid);
        assert!(t.contains("FLInt ASM (D>=20)"));
    }

    #[test]
    fn ablations_render() {
        let grid = micro_grid();
        let a = ablation_nofpu(&grid);
        assert!(a.contains("SoftFloat"), "{a}");
        assert!(a.contains("x"), "{a}");
        let b = ablation_blocksize(&grid);
        assert!(b.contains("block_nodes"), "{b}");
        assert_eq!(b.lines().count(), 7, "{b}"); // header ×2 + 5 sizes
    }
}
