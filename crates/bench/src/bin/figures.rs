//! Prints the paper's tables and figures from simulated cost models.
//!
//! ```text
//! figures [--paper-scale] [table1|fig2|fig3|table2|fig4|table3|ablation-nofpu|all]
//! ```
//!
//! The default quick grid runs in seconds; `--paper-scale` runs the
//! paper's full 9×7 sweep on small-scale datasets (minutes).

use flint_bench::report;
use flint_bench::{train_grid, GridScale};
use flint_sim::Machine;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--paper-scale") {
        GridScale::Paper
    } else {
        GridScale::Quick
    };
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    match what {
        "table1" => print!("{}", report::table1()),
        "fig2" => print!("{}", report::fig2(65536)),
        "fig3" => {
            let grid = train_grid(scale);
            for machine in Machine::PAPER_SET {
                println!("{}", report::fig3_panel(machine, &grid));
            }
        }
        "table2" => {
            let grid = train_grid(scale);
            print!("{}", report::table2(&grid));
        }
        "fig4" => {
            let grid = train_grid(scale);
            print!("{}", report::fig4(&grid));
        }
        "table3" => {
            let grid = train_grid(scale);
            print!("{}", report::table3(&grid));
        }
        "ablation-nofpu" => {
            let grid = train_grid(scale);
            print!("{}", report::ablation_nofpu(&grid));
        }
        "ablation-blocksize" => {
            let grid = train_grid(scale);
            print!("{}", report::ablation_blocksize(&grid));
        }
        "all" => print!("{}", report::full_report(scale)),
        other => {
            eprintln!(
                "unknown artifact {other:?}; expected one of table1, fig2, fig3, table2, fig4, table3, ablation-nofpu, ablation-blocksize, all"
            );
            std::process::exit(2);
        }
    }
}
