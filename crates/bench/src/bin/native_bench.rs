//! The paper's actual host experiment: **compile the generated if-else
//! trees with the system C compiler and time the binaries**.
//!
//! This is the faithful reproduction of the Fig. 3 measurement setup —
//! gcc-compiled nested if-else blocks where naive trees load float
//! constants from data memory and FLInt trees carry integer immediates
//! in the instruction stream. (The criterion benches measure our flat
//! array *interpreters*, which deliberately equalize the two memory
//! paths; this harness measures the real codegen artifact.)
//!
//! ```text
//! cargo run -p flint-bench --release --bin native_bench [-- --depths 5,20 --trees 20]
//! ```
//!
//! Requires a C compiler (`cc`) on PATH; exits with a note otherwise.

use flint_codegen::c_emitter::{c_float_literal, emit_forest_c, CVariant};
use flint_data::train_test_split;
use flint_data::uci::{Scale, UciDataset};
use flint_data::Dataset;
use flint_forest::{ForestConfig, RandomForest};
use std::io::Write as _;
use std::process::Command;

fn have_cc() -> bool {
    Command::new("cc")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

/// Emits, compiles and runs a timing binary; returns ns per inference.
fn time_c_forest(forest: &RandomForest, variant: CVariant, test: &Dataset, reps: usize) -> f64 {
    let dir = std::env::temp_dir().join(format!(
        "flint_native_bench_{}_{}",
        std::process::id(),
        variant.suffix()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let src = dir.join("bench.c");
    let bin = dir.join("bench_bin");

    let mut source = emit_forest_c(forest, variant);
    source.push_str("\n#include <stdio.h>\n#include <time.h>\n");
    source.push_str(&format!(
        "static const float inputs[{}][{}] = {{\n",
        test.n_samples(),
        forest.n_features()
    ));
    for i in 0..test.n_samples() {
        let cells: Vec<String> = test.sample(i).iter().map(|&v| c_float_literal(v)).collect();
        source.push_str(&format!("    {{{}}},\n", cells.join(", ")));
    }
    source.push_str("};\n");
    source.push_str(&format!(
        r#"
int main(void) {{
    volatile unsigned int sink = 0;
    struct timespec t0, t1;
    clock_gettime(CLOCK_MONOTONIC, &t0);
    for (int r = 0; r < {reps}; ++r) {{
        for (int i = 0; i < {n}; ++i) {{
            sink += predict_forest_{suffix}(inputs[i]);
        }}
    }}
    clock_gettime(CLOCK_MONOTONIC, &t1);
    double ns = (t1.tv_sec - t0.tv_sec) * 1e9 + (t1.tv_nsec - t0.tv_nsec);
    printf("%.2f\n", ns / ((double){reps} * {n}));
    return sink == 0xffffffffu; /* keep sink alive */
}}
"#,
        reps = reps,
        n = test.n_samples(),
        suffix = variant.suffix()
    ));
    std::fs::File::create(&src)
        .and_then(|mut f| f.write_all(source.as_bytes()))
        .expect("write source");

    let compile = Command::new("cc")
        .args(["-O2", "-o"])
        .arg(&bin)
        .arg(&src)
        .output()
        .expect("invoke cc");
    assert!(
        compile.status.success(),
        "cc failed:\n{}",
        String::from_utf8_lossy(&compile.stderr)
    );
    let run = Command::new(&bin).output().expect("run binary");
    assert!(run.status.success(), "generated binary failed");
    let _ = std::fs::remove_dir_all(&dir);
    String::from_utf8_lossy(&run.stdout)
        .trim()
        .parse()
        .expect("ns value")
}

fn main() {
    if !have_cc() {
        eprintln!("native_bench requires a C compiler (cc) on PATH — skipping");
        return;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parse_list = |flag: &str, default: Vec<usize>| -> Vec<usize> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|v| v.split(',').filter_map(|p| p.parse().ok()).collect())
            .unwrap_or(default)
    };
    let depths = parse_list("--depths", vec![1, 5, 10, 20, 30]);
    let trees = parse_list("--trees", vec![20])[0];

    let data = UciDataset::Magic.generate(Scale::Small);
    let split = train_test_split(&data, 0.25, 42);
    println!(
        "HOST NATIVE CODEGEN BENCH (cc -O2 compiled if-else trees, {} trees, {} test samples)",
        trees,
        split.test.n_samples()
    );
    println!(
        "{:<6} {:>14} {:>14} {:>12}",
        "depth", "naive ns/inf", "flint ns/inf", "normalized"
    );
    for &depth in &depths {
        let forest = RandomForest::fit(&split.train, &ForestConfig::grid(trees, depth))
            .expect("synthetic data trains");
        let reps = (2_000_000 / split.test.n_samples()).clamp(10, 5000);
        let naive = time_c_forest(&forest, CVariant::Standard, &split.test, reps);
        let flint = time_c_forest(&forest, CVariant::Flint, &split.test, reps);
        println!(
            "{:<6} {:>14.1} {:>14.1} {:>11.3}x",
            depth,
            naive,
            flint,
            flint / naive
        );
    }
}
