//! Load generation against the `flint-serve` stack, closed-loop and
//! open-loop — the experiments behind the "Serving latency" and
//! "Open-loop serving" sections of EXPERIMENTS.md and
//! `cargo bench --bench serve_latency`.
//!
//! **Closed loop** ([`closed_loop`]) means each simulated client keeps
//! exactly one request in flight: it sends a row, blocks until the
//! response arrives, then sends the next. Offered concurrency equals
//! the client count, which makes batch-fill measurements interpretable
//! — but the offered *rate* sags whenever the server stalls, because a
//! blocked client stops sending. That feedback is **coordinated
//! omission**: the slow moments are exactly the ones sampled least, so
//! closed-loop tail percentiles flatter the server.
//! [`LoadReport::coordinated_omission_warning`] estimates how many
//! would-have-been requests the stalls hid and says so when the count
//! is material.
//!
//! **Open loop** ([`open_loop`]) removes the feedback: requests depart
//! on a fixed virtual-time schedule (request *k* is *due* at
//! `start + k/rate` regardless of how the server is doing), writers
//! never wait for responses, and every latency is measured from the
//! request's **intended** departure time — so when the server falls
//! behind, the queueing delay lands in the recorded tail instead of
//! silently stretching the send schedule. This is the
//! coordinated-omission-safe way to ask "what latency does a client see
//! at N requests/second?", and it runs over real TCP against either
//! serving front end.

use flint_serve::Batcher;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Latency distribution over one load-generation run, microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median (nearest rank).
    pub p50_us: u64,
    /// 99th percentile (nearest rank).
    pub p99_us: u64,
    /// 99.9th percentile (nearest rank).
    pub p999_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarizes raw per-request latencies (order irrelevant).
    pub fn from_micros(mut samples_us: Vec<u64>) -> Self {
        samples_us.sort_unstable();
        let count = samples_us.len();
        let mean_us = if count == 0 {
            0.0
        } else {
            samples_us.iter().sum::<u64>() as f64 / count as f64
        };
        Self {
            count,
            mean_us,
            p50_us: flint_serve::metrics::percentile(&samples_us, 50.0),
            p99_us: flint_serve::metrics::percentile(&samples_us, 99.0),
            p999_us: flint_serve::metrics::percentile(&samples_us, 99.9),
            max_us: samples_us.last().copied().unwrap_or(0),
        }
    }
}

/// One closed-loop run: end-to-end latency distribution, throughput and
/// the batcher's own fill statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadReport {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Total requests completed.
    pub requests: usize,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Completed requests per second.
    pub requests_per_sec: f64,
    /// Mean samples per scored batch (from the batcher's metrics).
    pub mean_fill: f64,
    /// Estimated requests the closed loop *failed to send* because a
    /// client was blocked on a slow response: for each request,
    /// `max(0, latency/mean - 1)` more would have departed on a steady
    /// schedule. Large values mean the tail percentiles are optimistic
    /// (coordinated omission).
    pub omitted_estimate: f64,
    /// Per-request latency distribution, measured at the callers.
    pub latency: LatencySummary,
}

impl LoadReport {
    /// A human-readable coordinated-omission caution, when the omission
    /// estimate exceeds 5% of the measured requests — the threshold at
    /// which closed-loop percentiles start to meaningfully flatter the
    /// server. `None` means the run's latencies were steady enough that
    /// the closed loop barely distorted the schedule.
    pub fn coordinated_omission_warning(&self) -> Option<String> {
        if self.requests == 0 {
            return None;
        }
        let pct = 100.0 * self.omitted_estimate / self.requests as f64;
        if pct <= 5.0 {
            return None;
        }
        Some(format!(
            "coordinated omission: latency stalls hid an estimated {:.0} would-be requests \
             ({pct:.1}% of the {} measured); closed-loop tail percentiles are optimistic — \
             prefer the open-loop generator at a fixed offered rate",
            self.omitted_estimate, self.requests
        ))
    }
}

/// Drives `batcher` with `clients` concurrent closed-loop clients, each
/// issuing `requests_per_client` rows drawn round-robin (strided by
/// client) from `rows`.
///
/// # Panics
///
/// Panics if `rows` is empty, a row has the wrong arity, or the batcher
/// shuts down mid-run.
pub fn closed_loop(
    batcher: &Batcher,
    rows: &[Vec<f32>],
    clients: usize,
    requests_per_client: usize,
) -> LoadReport {
    assert!(!rows.is_empty(), "need at least one request row");
    let clients = clients.max(1);
    let fill_before = batcher.metrics();
    let start = Instant::now();
    let mut samples_us: Vec<u64> = Vec::with_capacity(clients * requests_per_client);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let handle = batcher.handle();
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(requests_per_client);
                    for k in 0..requests_per_client {
                        let row = &rows[(c + k * clients) % rows.len()];
                        let sent = Instant::now();
                        handle.predict(row).expect("request served");
                        lat.push(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
                    }
                    lat
                })
            })
            .collect();
        for worker in workers {
            samples_us.extend(worker.join().expect("client thread"));
        }
    });
    let wall_secs = start.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
    let fill_after = batcher.metrics();
    let batches = fill_after.batches.saturating_sub(fill_before.batches);
    let requests = samples_us.len();
    let mean_us = if requests == 0 {
        0.0
    } else {
        samples_us.iter().sum::<u64>() as f64 / requests as f64
    };
    // Each request slower than the mean kept its client silent for the
    // excess time; at the client's own average pace that silence is
    // worth `latency/mean - 1` unsent requests.
    let omitted_estimate = if mean_us > 0.0 {
        samples_us
            .iter()
            .map(|&us| (us as f64 / mean_us - 1.0).max(0.0))
            .sum()
    } else {
        0.0
    };
    LoadReport {
        clients,
        requests,
        wall_secs,
        requests_per_sec: requests as f64 / wall_secs,
        mean_fill: if batches == 0 {
            0.0
        } else {
            (fill_after.requests.saturating_sub(fill_before.requests)) as f64 / batches as f64
        },
        omitted_estimate,
        latency: LatencySummary::from_micros(samples_us),
    }
}

/// Shape of one open-loop run: how fast, how many, over how many
/// connections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopSpec {
    /// Offered arrival rate, requests per second across all
    /// connections. Request `k` is due at `start + k/rate` whether or
    /// not the server keeps up.
    pub rate_rps: f64,
    /// Total requests in the run.
    pub total_requests: usize,
    /// TCP connections the requests round-robin over.
    pub connections: usize,
    /// Multiple of `rate_rps` at which a writer re-sends backlog after
    /// a stall (its own scheduling hiccup or a blocking `write_all`).
    /// Must be at least 1. Without this bound the entire overdue
    /// backlog departed as one unpaced burst the moment the writer
    /// recovered — a send pattern no steady open-loop client produces,
    /// which inflated p999 with self-made queueing. Latencies are still
    /// measured from the *intended* departure times, so the pacing
    /// never hides server-side delay (coordinated omission stays
    /// impossible); it only stops the generator from manufacturing
    /// load spikes the schedule never asked for. 2 is a sane default:
    /// backlog drains at twice the offered rate.
    pub catch_up_factor: f64,
}

/// Pure virtual-time pacer for one open-loop writer: decides how long
/// to wait before sending request `k` given the current instant, and
/// counts sends that departed after their schedule. On-time sends wait
/// until their due instant; once the writer falls behind, overdue
/// backlog is released at `catch_up` spacing (a bounded multiple of
/// the offered rate) instead of as one burst. Pure logic over caller
/// supplied instants, so stalls are unit-testable without sleeping.
#[derive(Debug, Clone)]
pub struct SendPacer {
    start: Instant,
    rate_rps: f64,
    /// Minimum spacing between consecutive catch-up sends.
    catch_up: Duration,
    /// Earliest instant the next send may depart while draining
    /// backlog; `None` when on schedule.
    earliest: Option<Instant>,
    late_sends: u64,
}

impl SendPacer {
    /// A pacer for the global schedule `start + k / rate_rps` whose
    /// catch-up sends this writer spaces `1 / catch_up_rps` apart.
    pub fn new(start: Instant, rate_rps: f64, catch_up_rps: f64) -> Self {
        assert!(rate_rps > 0.0, "need a positive offered rate");
        assert!(catch_up_rps > 0.0, "need a positive catch-up rate");
        Self {
            start,
            rate_rps,
            catch_up: Duration::from_secs_f64(1.0 / catch_up_rps),
            earliest: None,
            late_sends: 0,
        }
    }

    /// The instant request `k` is due on the virtual-time schedule.
    pub fn due(&self, k: usize) -> Instant {
        self.start + Duration::from_secs_f64(k as f64 / self.rate_rps)
    }

    /// How long the writer must sleep before sending request `k` when
    /// the clock reads `now`. Zero means send immediately. Late sends
    /// (departing after their due instant) are counted and pace the
    /// rest of the backlog at the catch-up spacing.
    pub fn wait_before(&mut self, k: usize, now: Instant) -> Duration {
        let due = self.due(k);
        let floor = self.earliest.map_or(due, |e| e.max(due));
        match floor.checked_duration_since(now) {
            Some(wait) if floor > due => {
                // Paced catch-up slot: still late against the schedule.
                self.late_sends += 1;
                self.earliest = Some(floor + self.catch_up);
                wait
            }
            Some(wait) => {
                // On schedule; any backlog has drained.
                self.earliest = None;
                wait
            }
            None => {
                // Overdue: send now, pace the rest of the backlog.
                self.late_sends += 1;
                self.earliest = Some(now + self.catch_up);
                Duration::ZERO
            }
        }
    }

    /// Sends so far that departed after their due instant.
    pub fn late_sends(&self) -> u64 {
        self.late_sends
    }
}

/// One open-loop run against a live TCP serving front end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopReport {
    /// Connections used.
    pub connections: usize,
    /// The offered arrival rate (the schedule).
    pub offered_rps: f64,
    /// Completed responses divided by wall time; sags below
    /// `offered_rps` when the server cannot keep up.
    pub achieved_rps: f64,
    /// Responses received.
    pub responses: usize,
    /// Responses that were not predictions (`busy` sheds, errors).
    pub errors: usize,
    /// Requests that departed after their intended schedule slot
    /// (writer stalls; see [`OpenLoopSpec::catch_up_factor`]). A large
    /// fraction means the generator — not the server — was the
    /// bottleneck and the offered rate was not actually sustained.
    pub late_sends: u64,
    /// Wall-clock seconds from the schedule start to the last response.
    pub wall_secs: f64,
    /// Per-request latency from **intended** departure time to response
    /// — queueing delay from a backed-up schedule is included, which is
    /// what makes the tail coordinated-omission-safe.
    pub latency: LatencySummary,
}

/// Drives a live TCP serving endpoint with `spec.total_requests` rows
/// on a fixed `spec.rate_rps` virtual-time schedule spread round-robin
/// over `spec.connections` connections. Writers never wait for
/// responses; readers match responses to requests FIFO per connection
/// (the protocol answers in order) and time each one against its
/// intended departure.
///
/// # Errors
///
/// Any [`std::io::Error`] from connecting, sending or receiving. A
/// server that sheds or rejects a request still answers it (counted in
/// [`OpenLoopReport::errors`]), so an error return means the transport
/// itself failed.
///
/// # Panics
///
/// Panics if `rows` is empty or `spec.rate_rps` is not positive.
pub fn open_loop(
    addr: SocketAddr,
    rows: &[Vec<f32>],
    spec: OpenLoopSpec,
) -> std::io::Result<OpenLoopReport> {
    assert!(!rows.is_empty(), "need at least one request row");
    assert!(spec.rate_rps > 0.0, "need a positive offered rate");
    assert!(
        spec.catch_up_factor >= 1.0,
        "catch-up slower than the offered rate can never drain backlog"
    );
    let connections = spec.connections.max(1);
    let total = spec.total_requests;
    // Pre-render every request line so the send path is one write call.
    let lines: Vec<String> = (0..total)
        .map(|k| {
            let row = &rows[k % rows.len()];
            let mut line = row.iter().map(f32::to_string).collect::<Vec<_>>().join(",");
            line.push('\n');
            line
        })
        .collect();
    let streams: Vec<TcpStream> = (0..connections)
        .map(|_| {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            Ok(stream)
        })
        .collect::<std::io::Result<_>>()?;

    // The schedule starts a breath in the future so connection 0's
    // first request is not already late before the threads spawn.
    let start = Instant::now() + Duration::from_millis(5);
    // Each writer's share of the catch-up rate: backlog drains at
    // `catch_up_factor` times the offered rate across all connections.
    let catch_up_rps = spec.rate_rps * spec.catch_up_factor / connections as f64;
    let mut all_latencies: Vec<u64> = Vec::with_capacity(total);
    let mut errors = 0usize;
    let mut late_sends = 0u64;
    let mut last_response = start;
    std::thread::scope(|scope| -> std::io::Result<()> {
        let mut writers = Vec::with_capacity(connections);
        let mut readers = Vec::with_capacity(connections);
        for (c, stream) in streams.into_iter().enumerate() {
            let mut write_half = stream.try_clone()?;
            let lines = &lines;
            writers.push(scope.spawn(move || -> std::io::Result<u64> {
                let mut pacer = SendPacer::new(start, spec.rate_rps, catch_up_rps);
                let mut k = c;
                while k < total {
                    let wait = pacer.wait_before(k, Instant::now());
                    if !wait.is_zero() {
                        std::thread::sleep(wait);
                    }
                    // Send even when late: the reader charges the delay
                    // against the intended time, not this actual one —
                    // the pacer only bounds the burst, never the
                    // latency accounting.
                    write_half.write_all(lines[k].as_bytes())?;
                    k += connections;
                }
                Ok(pacer.late_sends())
            }));
            readers.push(
                scope.spawn(move || -> std::io::Result<(Vec<u64>, usize, Instant)> {
                    let mut reader = BufReader::new(stream);
                    let mut latencies = Vec::with_capacity(total.div_ceil(connections));
                    let mut errors = 0usize;
                    let mut last = start;
                    let mut line = String::new();
                    let mut k = c;
                    while k < total {
                        line.clear();
                        if reader.read_line(&mut line)? == 0 {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::UnexpectedEof,
                                format!(
                                    "server closed connection {c} after {} responses",
                                    latencies.len()
                                ),
                            ));
                        }
                        let now = Instant::now();
                        last = now;
                        let due = start + Duration::from_secs_f64(k as f64 / spec.rate_rps);
                        let us = now
                            .checked_duration_since(due)
                            .map_or(0, |d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
                        latencies.push(us);
                        if !line.starts_with("{\"class\":") {
                            errors += 1;
                        }
                        k += connections;
                    }
                    Ok((latencies, errors, last))
                }),
            );
        }
        for writer in writers {
            late_sends += writer.join().expect("open-loop writer thread")?;
        }
        for reader in readers {
            let (latencies, conn_errors, last) = reader.join().expect("open-loop reader thread")?;
            all_latencies.extend(latencies);
            errors += conn_errors;
            if last > last_response {
                last_response = last;
            }
        }
        Ok(())
    })?;

    let responses = all_latencies.len();
    let wall_secs = last_response
        .saturating_duration_since(start)
        .as_secs_f64()
        .max(f64::MIN_POSITIVE);
    Ok(OpenLoopReport {
        connections,
        offered_rps: spec.rate_rps,
        achieved_rps: responses as f64 / wall_secs,
        responses,
        errors,
        late_sends,
        wall_secs,
        latency: LatencySummary::from_micros(all_latencies),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_data::synth::SynthSpec;
    use flint_exec::{EngineBuilder, EngineKind, Predictor};
    use flint_forest::{ForestConfig, RandomForest};
    use flint_serve::BatchPolicy;
    use std::time::Duration;

    #[test]
    fn summary_percentiles_are_exact_on_known_samples() {
        let summary = LatencySummary::from_micros((1..=200).collect());
        assert_eq!(summary.count, 200);
        assert_eq!(summary.p50_us, 100);
        assert_eq!(summary.p99_us, 198);
        assert_eq!(summary.p999_us, 200);
        assert_eq!(summary.max_us, 200);
        assert_eq!(summary.mean_us, 100.5);
        let empty = LatencySummary::from_micros(Vec::new());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean_us, 0.0);
    }

    #[test]
    fn closed_loop_serves_every_request() {
        let data = SynthSpec::new(80, 4, 2).seed(7).generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(4, 6)).expect("trainable");
        let engine = EngineBuilder::new(&forest)
            .build(EngineKind::parse("flint-blocked").expect("registered"))
            .expect("builds");
        let policy = BatchPolicy::default()
            .max_batch(8)
            .linger(Duration::from_micros(200))
            .workers(2);
        let batcher = flint_serve::Batcher::start(engine, policy);
        let rows: Vec<Vec<f32>> = (0..data.n_samples())
            .map(|i| data.sample(i).to_vec())
            .collect();
        let report = closed_loop(&batcher, &rows, 4, 25);
        assert_eq!(report.requests, 100);
        assert_eq!(report.latency.count, 100);
        assert!(report.requests_per_sec > 0.0);
        assert!(
            report.mean_fill >= 1.0 && report.mean_fill <= 8.0,
            "{report:?}"
        );
        assert!(report.latency.p99_us >= report.latency.p50_us);
        assert!(report.omitted_estimate >= 0.0);
        let stats = batcher.shutdown();
        assert_eq!(stats.requests, 100);
    }

    #[test]
    fn omission_warning_fires_on_stalls_not_on_steady_latency() {
        // Perfectly steady latencies: nothing was omitted.
        let steady = LoadReport {
            clients: 1,
            requests: 100,
            wall_secs: 1.0,
            requests_per_sec: 100.0,
            mean_fill: 1.0,
            omitted_estimate: 0.0,
            latency: LatencySummary::from_micros(vec![100; 100]),
        };
        assert_eq!(steady.coordinated_omission_warning(), None);
        // A big stall estimate trips the caution.
        let stalled = LoadReport {
            omitted_estimate: 40.0,
            ..steady
        };
        let warning = stalled
            .coordinated_omission_warning()
            .expect("40% omission warns");
        assert!(warning.contains("coordinated omission"), "{warning}");
        assert!(warning.contains("open-loop"), "{warning}");
    }

    fn serving_engine() -> (Box<dyn Predictor>, Vec<Vec<f32>>) {
        let data = SynthSpec::new(80, 4, 2).seed(7).generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(4, 6)).expect("trainable");
        let engine = EngineBuilder::new(&forest)
            .build(EngineKind::parse("flint-blocked").expect("registered"))
            .expect("builds");
        let rows = (0..data.n_samples())
            .map(|i| data.sample(i).to_vec())
            .collect();
        (engine, rows)
    }

    #[test]
    fn open_loop_measures_from_the_intended_schedule() {
        let (engine, rows) = serving_engine();
        let server = flint_serve::Server::bind("127.0.0.1:0", engine, BatchPolicy::default())
            .expect("binds loopback");
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || server.run().expect("serves"));

        let report = open_loop(
            addr,
            &rows,
            OpenLoopSpec {
                rate_rps: 2000.0,
                total_requests: 200,
                connections: 4,
                catch_up_factor: 2.0,
            },
        )
        .expect("open loop runs");
        assert_eq!(report.responses, 200);
        assert_eq!(report.errors, 0, "{report:?}");
        assert_eq!(report.latency.count, 200);
        assert!(report.achieved_rps > 0.0);
        // The schedule spans 100 ms; a loopback run can't take 100x.
        assert!(report.wall_secs < 10.0, "{report:?}");
        assert!(report.latency.p999_us >= report.latency.p99_us);

        let stream = TcpStream::connect(addr).expect("connects");
        let mut w = stream.try_clone().expect("clones");
        w.write_all(b"shutdown\n").expect("writes");
        runner.join().expect("server thread");
    }

    #[test]
    fn pacer_releases_on_time_sends_at_their_due_instants() {
        let start = Instant::now();
        // 1000 rps schedule, catch-up at 2000 rps.
        let mut pacer = SendPacer::new(start, 1000.0, 2000.0);
        assert_eq!(pacer.wait_before(0, start), Duration::ZERO);
        assert_eq!(pacer.wait_before(1, start), Duration::from_millis(1));
        assert_eq!(
            pacer.wait_before(7, start + Duration::from_millis(3)),
            Duration::from_millis(4)
        );
        assert_eq!(pacer.late_sends(), 0);
    }

    #[test]
    fn pacer_bounds_the_post_stall_burst_instead_of_releasing_it_at_once() {
        let start = Instant::now();
        let mut pacer = SendPacer::new(start, 1000.0, 2000.0);
        // Simulate a 50 ms writer stall: when the writer wakes at
        // start+52ms, requests 0..52 are all overdue.
        let mut now = start + Duration::from_millis(52);
        let mut departures = Vec::new();
        for k in 0..52 {
            let wait = pacer.wait_before(k, now);
            now += wait; // the writer sleeps, then sends
            departures.push(now);
        }
        // Before the fix the whole backlog departed at `now` as one
        // burst; the pacer must spread it at the catch-up spacing.
        for pair in departures.windows(2) {
            assert!(
                pair[1] - pair[0] >= Duration::from_micros(500),
                "catch-up sends {:?} apart; burst not bounded",
                pair[1] - pair[0]
            );
        }
        assert_eq!(pacer.late_sends(), 52);
        // Every departure is late against its own due instant — the
        // pacing never rewrites the schedule latencies are charged to.
        for (k, &at) in departures.iter().enumerate() {
            assert!(at > pacer.due(k), "request {k} must still count as late");
        }
        // Once the schedule catches back up (due beyond the backlog
        // drain), the pacer returns to due-instant release and stops
        // counting lates.
        let due_far = pacer.due(200); // start + 200 ms
        let wait = pacer.wait_before(200, now);
        assert_eq!(now + wait, due_far);
        assert_eq!(pacer.late_sends(), 52);
        // ...and the backlog pacing state is fully reset afterwards.
        assert_eq!(pacer.wait_before(201, due_far), Duration::from_millis(1));
        assert_eq!(pacer.late_sends(), 52);
    }

    #[test]
    #[should_panic(expected = "catch-up slower than the offered rate")]
    fn open_loop_rejects_a_catch_up_factor_below_one() {
        let addr: SocketAddr = "127.0.0.1:1".parse().expect("parses");
        let _ = open_loop(
            addr,
            &[vec![0.0]],
            OpenLoopSpec {
                rate_rps: 100.0,
                total_requests: 1,
                connections: 1,
                catch_up_factor: 0.5,
            },
        );
    }
}
