//! Closed-loop load generation against the `flint-serve` micro-batcher
//! — the experiment behind the "Serving latency" section of
//! EXPERIMENTS.md and `cargo bench --bench serve_latency`.
//!
//! Closed loop means each simulated client keeps exactly one request in
//! flight: it sends a row, blocks until the response arrives, then
//! sends the next. Offered concurrency therefore equals the client
//! count, which is what makes batch-fill and latency measurements
//! interpretable — an open-loop generator would conflate queueing delay
//! with service time.

use flint_serve::Batcher;
use std::time::Instant;

/// Latency distribution over one load-generation run, microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median (nearest rank).
    pub p50_us: u64,
    /// 99th percentile (nearest rank).
    pub p99_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarizes raw per-request latencies (order irrelevant).
    pub fn from_micros(mut samples_us: Vec<u64>) -> Self {
        samples_us.sort_unstable();
        let count = samples_us.len();
        let mean_us = if count == 0 {
            0.0
        } else {
            samples_us.iter().sum::<u64>() as f64 / count as f64
        };
        Self {
            count,
            mean_us,
            p50_us: flint_serve::metrics::percentile(&samples_us, 50.0),
            p99_us: flint_serve::metrics::percentile(&samples_us, 99.0),
            max_us: samples_us.last().copied().unwrap_or(0),
        }
    }
}

/// One closed-loop run: end-to-end latency distribution, throughput and
/// the batcher's own fill statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadReport {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Total requests completed.
    pub requests: usize,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Completed requests per second.
    pub requests_per_sec: f64,
    /// Mean samples per scored batch (from the batcher's metrics).
    pub mean_fill: f64,
    /// Per-request latency distribution, measured at the callers.
    pub latency: LatencySummary,
}

/// Drives `batcher` with `clients` concurrent closed-loop clients, each
/// issuing `requests_per_client` rows drawn round-robin (strided by
/// client) from `rows`.
///
/// # Panics
///
/// Panics if `rows` is empty, a row has the wrong arity, or the batcher
/// shuts down mid-run.
pub fn closed_loop(
    batcher: &Batcher,
    rows: &[Vec<f32>],
    clients: usize,
    requests_per_client: usize,
) -> LoadReport {
    assert!(!rows.is_empty(), "need at least one request row");
    let clients = clients.max(1);
    let fill_before = batcher.metrics();
    let start = Instant::now();
    let mut samples_us: Vec<u64> = Vec::with_capacity(clients * requests_per_client);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let handle = batcher.handle();
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(requests_per_client);
                    for k in 0..requests_per_client {
                        let row = &rows[(c + k * clients) % rows.len()];
                        let sent = Instant::now();
                        handle.predict(row).expect("request served");
                        lat.push(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
                    }
                    lat
                })
            })
            .collect();
        for worker in workers {
            samples_us.extend(worker.join().expect("client thread"));
        }
    });
    let wall_secs = start.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
    let fill_after = batcher.metrics();
    let batches = fill_after.batches.saturating_sub(fill_before.batches);
    let requests = samples_us.len();
    LoadReport {
        clients,
        requests,
        wall_secs,
        requests_per_sec: requests as f64 / wall_secs,
        mean_fill: if batches == 0 {
            0.0
        } else {
            (fill_after.requests.saturating_sub(fill_before.requests)) as f64 / batches as f64
        },
        latency: LatencySummary::from_micros(samples_us),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_data::synth::SynthSpec;
    use flint_exec::{EngineBuilder, EngineKind};
    use flint_forest::{ForestConfig, RandomForest};
    use flint_serve::BatchPolicy;
    use std::time::Duration;

    #[test]
    fn summary_percentiles_are_exact_on_known_samples() {
        let summary = LatencySummary::from_micros((1..=200).collect());
        assert_eq!(summary.count, 200);
        assert_eq!(summary.p50_us, 100);
        assert_eq!(summary.p99_us, 198);
        assert_eq!(summary.max_us, 200);
        assert_eq!(summary.mean_us, 100.5);
        let empty = LatencySummary::from_micros(Vec::new());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean_us, 0.0);
    }

    #[test]
    fn closed_loop_serves_every_request() {
        let data = SynthSpec::new(80, 4, 2).seed(7).generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(4, 6)).expect("trainable");
        let engine = EngineBuilder::new(&forest)
            .build(EngineKind::parse("flint-blocked").expect("registered"))
            .expect("builds");
        let policy = BatchPolicy::default()
            .max_batch(8)
            .linger(Duration::from_micros(200))
            .workers(2);
        let batcher = flint_serve::Batcher::start(engine, policy);
        let rows: Vec<Vec<f32>> = (0..data.n_samples())
            .map(|i| data.sample(i).to_vec())
            .collect();
        let report = closed_loop(&batcher, &rows, 4, 25);
        assert_eq!(report.requests, 100);
        assert_eq!(report.latency.count, 100);
        assert!(report.requests_per_sec > 0.0);
        assert!(
            report.mean_fill >= 1.0 && report.mean_fill <= 8.0,
            "{report:?}"
        );
        assert!(report.latency.p99_us >= report.latency.p50_us);
        let stats = batcher.shutdown();
        assert_eq!(stats.requests, 100);
    }
}
