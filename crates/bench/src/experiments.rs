//! The experiment grid of the paper's evaluation (Section V) and the
//! aggregation used by its figures and tables.

use flint_data::uci::{Scale, UciDataset};
use flint_data::{train_test_split, Dataset, FeatureMatrix, TrainTestSplit};
use flint_exec::{BatchOptions, BuildEngineError, EngineBuilder, EngineKind, HalfForest};
use flint_forest::{ForestConfig, RandomForest};
use flint_sim::{simulate_forest, Machine, SimConfig, SimulateError};
use std::collections::BTreeMap;
use std::time::Instant;

/// Ensemble sizes swept by the paper.
pub const PAPER_TREES: [usize; 9] = [1, 5, 10, 15, 20, 30, 50, 80, 100];
/// Maximal depths swept by the paper.
pub const PAPER_DEPTHS: [usize; 7] = [1, 5, 10, 15, 20, 30, 50];

/// How much of the paper's grid to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridScale {
    /// Reduced grid on tiny datasets — seconds, for CI and smoke runs.
    Quick,
    /// The paper's full grid on small-scale datasets — minutes.
    Paper,
}

impl GridScale {
    /// The ensemble sizes of this grid.
    pub fn trees(self) -> &'static [usize] {
        match self {
            GridScale::Quick => &[1, 5, 10, 20],
            GridScale::Paper => &PAPER_TREES,
        }
    }

    /// The depth sweep of this grid.
    pub fn depths(self) -> &'static [usize] {
        match self {
            GridScale::Quick => &[1, 5, 10, 20, 30],
            GridScale::Paper => &PAPER_DEPTHS,
        }
    }

    /// The dataset size used. Both grids run on the tiny dataset scale:
    /// the full paper grid (9 ensemble sizes × 7 depths × 5 datasets ×
    /// 4 machines × 5 configurations) already takes minutes there, and
    /// the normalized-time aggregates are insensitive to sample count
    /// (they are ratios of per-inference costs).
    pub fn dataset_scale(self) -> Scale {
        match self {
            GridScale::Quick | GridScale::Paper => Scale::Tiny,
        }
    }
}

/// One trained grid point, reused across configurations and machines.
#[derive(Debug)]
pub struct GridPoint {
    /// Which dataset.
    pub dataset: UciDataset,
    /// Ensemble size.
    pub n_trees: usize,
    /// Depth cap.
    pub max_depth: usize,
    /// Train/test split (75/25 like the paper).
    pub split: TrainTestSplit,
    /// The trained forest.
    pub forest: RandomForest,
}

/// Trains every `(dataset, n_trees, depth)` point of the grid once.
///
/// # Panics
///
/// Panics if training fails (generated datasets are never empty or
/// NaN-bearing).
pub fn train_grid(scale: GridScale) -> Vec<GridPoint> {
    let mut points = Vec::new();
    for dataset in UciDataset::ALL {
        let data = dataset.generate(scale.dataset_scale());
        let split = train_test_split(&data, 0.25, 42);
        for &n_trees in scale.trees() {
            for &max_depth in scale.depths() {
                let forest =
                    RandomForest::fit(&split.train, &ForestConfig::grid(n_trees, max_depth))
                        .expect("synthetic data always trains");
                points.push(GridPoint {
                    dataset,
                    n_trees,
                    max_depth,
                    split: TrainTestSplit {
                        train: split.train.clone(),
                        test: split.test.clone(),
                    },
                    forest,
                });
            }
        }
    }
    points
}

/// Geometric mean of strictly positive values (1.0 for empty input).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Population variance (0.0 for fewer than two values).
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64
}

/// One Fig. 3 data point: normalized time of one configuration at one
/// maximal depth, aggregated over datasets and ensemble sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthPoint {
    /// The maximal depth (x axis).
    pub max_depth: usize,
    /// Geometric-mean normalized execution time (y axis).
    pub mean: f64,
    /// Variance across datasets × ensemble sizes.
    pub variance: f64,
}

/// Fig. 3 for one machine: per configuration, the depth series of
/// normalized execution times.
///
/// # Errors
///
/// Propagates [`SimulateError`] (cannot occur for FPU machines).
pub fn fig3_series(
    machine: Machine,
    grid: &[GridPoint],
    configs: &[SimConfig],
) -> Result<BTreeMap<&'static str, Vec<DepthPoint>>, SimulateError> {
    // ratios[config name][depth] -> Vec of normalized times
    let mut ratios: BTreeMap<&'static str, BTreeMap<usize, Vec<f64>>> = BTreeMap::new();
    for point in grid {
        let naive = simulate_forest(
            machine,
            &point.forest,
            &point.split.train,
            &point.split.test,
            &SimConfig::naive(),
        )?;
        for config in configs {
            let report = simulate_forest(
                machine,
                &point.forest,
                &point.split.train,
                &point.split.test,
                config,
            )?;
            ratios
                .entry(config.name())
                .or_default()
                .entry(point.max_depth)
                .or_default()
                .push(report.total_cycles() / naive.total_cycles());
        }
    }
    Ok(ratios
        .into_iter()
        .map(|(name, by_depth)| {
            let series = by_depth
                .into_iter()
                .map(|(max_depth, values)| DepthPoint {
                    max_depth,
                    mean: geometric_mean(&values),
                    variance: variance(&values),
                })
                .collect();
            (name, series)
        })
        .collect())
}

/// One Table II / Table III row: overall geometric mean and the
/// deep-tree (`D >= 20`) geometric mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateRow {
    /// Geometric mean over the full grid.
    pub overall: f64,
    /// Geometric mean over grid points with `max_depth >= 20`.
    pub deep: f64,
}

/// Aggregates normalized times for `config` on `machine` over the grid
/// (Table II's "all" and "D ≥ 20" cells).
///
/// # Errors
///
/// Propagates [`SimulateError`].
pub fn aggregate(
    machine: Machine,
    grid: &[GridPoint],
    config: &SimConfig,
) -> Result<AggregateRow, SimulateError> {
    let mut all = Vec::new();
    let mut deep = Vec::new();
    for point in grid {
        let naive = simulate_forest(
            machine,
            &point.forest,
            &point.split.train,
            &point.split.test,
            &SimConfig::naive(),
        )?;
        let report = simulate_forest(
            machine,
            &point.forest,
            &point.split.train,
            &point.split.test,
            config,
        )?;
        let ratio = report.total_cycles() / naive.total_cycles();
        all.push(ratio);
        if point.max_depth >= 20 {
            deep.push(ratio);
        }
    }
    Ok(AggregateRow {
        overall: geometric_mean(&all),
        deep: geometric_mean(&deep),
    })
}

/// One row of the batch-throughput table: one registered engine's
/// measured scoring rate over a fixed workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputRow {
    /// Which engine.
    pub kind: EngineKind,
    /// Median wall-clock seconds per full scoring pass.
    pub median_secs: f64,
    /// Samples scored per second (workload size / median).
    pub samples_per_sec: f64,
    /// Speedup relative to the table's first row (>1 = faster).
    pub speedup_vs_first: f64,
}

/// Measures the batch-throughput table over registered engines — the
/// experiment behind `cargo bench --bench batch_throughput`, exposed as
/// a library function so the `flint bench` CLI subcommand can reproduce
/// it without cargo or criterion.
///
/// Every engine is built from the registry with `opts` bound, its
/// predictions are asserted bit-identical to its comparison family's
/// scalar reference — the forest's majority vote for exact engines,
/// the binary16 forest's scalar walk for the f16 engines (a throughput
/// number for a wrong result is worthless) — and then
/// `runs` scoring passes are timed; the median is reported. Rows come
/// back in the order of `kinds`, each with its speedup relative to the
/// first row (pass a scalar baseline first to reproduce the
/// `batch_throughput` layout).
///
/// # Errors
///
/// [`BuildEngineError`] if an engine fails to build.
///
/// # Panics
///
/// Panics if `kinds` is empty, the matrix width differs from the
/// model's, or an engine's predictions diverge from its reference.
pub fn batch_throughput_table(
    forest: &RandomForest,
    profile: Option<&Dataset>,
    matrix: &FeatureMatrix,
    opts: BatchOptions,
    kinds: &[EngineKind],
    runs: usize,
) -> Result<Vec<ThroughputRow>, BuildEngineError> {
    assert!(!kinds.is_empty(), "at least one engine");
    let mut builder = EngineBuilder::new(forest).options(opts);
    if let Some(data) = profile {
        builder = builder.profile_data(data);
    }
    let rows_of = |predict: &mut dyn FnMut(&[f32]) -> u32| {
        let mut row = vec![0.0f32; matrix.n_features()];
        (0..matrix.n_samples())
            .map(|i| {
                matrix.gather_row(i, &mut row);
                predict(&row)
            })
            .collect::<Vec<u32>>()
    };
    let exact_reference = rows_of(&mut |row| forest.predict_majority(row));
    // The binary16 engines answer for their own comparison family;
    // their reference is compiled lazily, once per compare mode.
    let mut f16_references: BTreeMap<&'static str, Vec<u32>> = BTreeMap::new();
    let runs = runs.max(1);
    let n = matrix.n_samples() as f64;
    let mut rows = Vec::with_capacity(kinds.len());
    let mut first_secs = None;
    for &kind in kinds {
        let engine = builder.build(kind)?;
        let reference: &Vec<u32> = match kind {
            EngineKind::SimdF16(compare) => {
                &*f16_references.entry(kind.name()).or_insert_with(|| {
                    let half = HalfForest::compile(forest, compare).expect("f16 forests compile");
                    rows_of(&mut |row| half.predict(row))
                })
            }
            _ => &exact_reference,
        };
        assert_eq!(
            &engine.predict_matrix(matrix),
            reference,
            "{} diverges from its comparison family's scalar reference",
            engine.name()
        );
        let mut secs: Vec<f64> = (0..runs)
            .map(|_| {
                let start = Instant::now();
                let out = engine.predict_matrix(matrix);
                let took = start.elapsed().as_secs_f64();
                debug_assert_eq!(out.len(), matrix.n_samples());
                took
            })
            .collect();
        secs.sort_by(f64::total_cmp);
        let median = secs[secs.len() / 2].max(f64::MIN_POSITIVE);
        let first = *first_secs.get_or_insert(median);
        rows.push(ThroughputRow {
            kind,
            median_secs: median,
            samples_per_sec: n / median,
            speedup_vs_first: first / median,
        });
    }
    Ok(rows)
}

/// The Fig. 2 data series: evenly sampled 32-bit patterns (NaN and the
/// infinities excluded) as `(SI(B), FP(B))` pairs.
pub fn fig2_series(n_points: usize) -> Vec<(i32, f32)> {
    let n = n_points.max(2) as u64;
    let mut series: Vec<(i32, f32)> = (0..n)
        .map(|k| (k * (u32::MAX as u64) / (n - 1)) as u32)
        .map(f32::from_bits)
        .filter(|v| v.is_finite())
        .map(|v| (v.to_bits() as i32, v))
        .collect();
    series.sort_by_key(|&(si, _)| si);
    series.dedup_by_key(|&mut (si, _)| si);
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 1.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn variance_basics() {
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig2_series_is_monotone_in_float_order() {
        let series = fig2_series(4096);
        assert!(series.len() > 1000);
        // Sorted by SI; FP must then follow the paper's V-shape: strictly
        // decreasing over the negative half and increasing over the
        // positive half.
        let neg: Vec<f32> = series
            .iter()
            .filter(|(si, _)| *si < 0)
            .map(|&(_, v)| v)
            .collect();
        let pos: Vec<f32> = series
            .iter()
            .filter(|(si, _)| *si >= 0)
            .map(|&(_, v)| v)
            .collect();
        assert!(
            neg.windows(2).all(|w| w[0] >= w[1]),
            "negative half decreasing"
        );
        assert!(
            pos.windows(2).all(|w| w[0] <= w[1]),
            "positive half increasing"
        );
    }

    #[test]
    fn throughput_table_covers_requested_engines() {
        let data = UciDataset::Wine.generate(Scale::Tiny);
        let forest = RandomForest::fit(&data, &ForestConfig::grid(4, 8)).expect("trains");
        let matrix = FeatureMatrix::from_dataset(&data);
        let kinds = [
            EngineKind::parse("flint").expect("registered"),
            EngineKind::parse("flint-blocked").expect("registered"),
            EngineKind::parse("quickscorer").expect("registered"),
        ];
        let rows = batch_throughput_table(
            &forest,
            Some(&data),
            &matrix,
            BatchOptions::default(),
            &kinds,
            3,
        )
        .expect("builds and measures");
        assert_eq!(rows.len(), kinds.len());
        for (row, kind) in rows.iter().zip(kinds) {
            assert_eq!(row.kind, kind);
            assert!(row.median_secs > 0.0);
            assert!(row.samples_per_sec > 0.0);
            assert!(row.speedup_vs_first > 0.0);
        }
        assert_eq!(rows[0].speedup_vs_first, 1.0, "first row is the baseline");
    }

    #[test]
    fn tiny_grid_trains_and_aggregates() {
        // A micro-grid: one dataset, small sweeps — just the plumbing.
        let data = UciDataset::Wine.generate(Scale::Tiny);
        let split = train_test_split(&data, 0.25, 42);
        let mut grid = Vec::new();
        for (n_trees, depth) in [(1, 5), (5, 20)] {
            let forest = RandomForest::fit(&split.train, &ForestConfig::grid(n_trees, depth))
                .expect("trains");
            grid.push(GridPoint {
                dataset: UciDataset::Wine,
                n_trees,
                max_depth: depth,
                split: TrainTestSplit {
                    train: split.train.clone(),
                    test: split.test.clone(),
                },
                forest,
            });
        }
        let row = aggregate(Machine::X86Server, &grid, &SimConfig::flint()).expect("simulates");
        assert!(row.overall < 1.0 && row.overall > 0.3);
        assert!(row.deep < 1.0);
        let series =
            fig3_series(Machine::X86Server, &grid, &[SimConfig::flint()]).expect("simulates");
        let flint = &series["FLInt"];
        assert_eq!(flint.len(), 2); // depths 5 and 20
        assert!(flint.iter().all(|p| p.mean < 1.0));
    }
}
