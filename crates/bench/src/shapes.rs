//! Forest-shape presets for the throughput harness: named
//! `(ensemble, depth, workload)` points spanning the regimes the
//! engines behave differently in, so `flint bench --shape ranking`
//! reproduces a bandwidth-bound measurement without hand-picking
//! training flags.
//!
//! * [`ForestShape::Magic`] — the paper's home regime: a few dozen
//!   mid-depth trees (MAGIC-telescope scale), compute-bound, where the
//!   per-node compare cost dominates;
//! * [`ForestShape::Ranking`] — a ranking-style ensemble (hundreds of
//!   shallow trees, LightGBM/LambdaMART shape): the node working set
//!   blows past cache, traversal is memory-bandwidth-bound, and
//!   halving node bytes (the `simd-f16` engines) pays directly;
//! * [`ForestShape::Deep`] — few but deep trees: long dependent walks,
//!   branch-history-hostile, the regime CAGS layouts target.

use flint_data::synth::SynthSpec;
use flint_data::Dataset;
use flint_forest::{ForestConfig, RandomForest};

/// A named forest/workload preset (see the module docs for the regime
/// each one pins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ForestShape {
    /// ~24 trees × depth 10 over 10 features — the paper's regime.
    Magic,
    /// ~600 trees × depth 6 over 32 features — bandwidth-bound
    /// ranking-ensemble scale.
    Ranking,
    /// ~12 trees × depth 18 over 16 features — long dependent walks.
    Deep,
}

impl ForestShape {
    /// Every preset, in documentation order.
    pub const ALL: [ForestShape; 3] = [ForestShape::Magic, ForestShape::Ranking, ForestShape::Deep];

    /// The stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ForestShape::Magic => "magic",
            ForestShape::Ranking => "ranking",
            ForestShape::Deep => "deep",
        }
    }

    /// Looks a preset name up, ignoring ASCII case.
    pub fn parse(name: &str) -> Option<ForestShape> {
        ForestShape::ALL
            .into_iter()
            .find(|s| s.name().eq_ignore_ascii_case(name))
    }

    /// One-line description of the regime the preset pins.
    pub fn describe(self) -> &'static str {
        match self {
            ForestShape::Magic => "24 trees x depth 10, 10 features: compute-bound paper regime",
            ForestShape::Ranking => {
                "600 trees x depth 6, 32 features: bandwidth-bound ranking ensemble"
            }
            ForestShape::Deep => "12 trees x depth 18, 16 features: deep dependent walks",
        }
    }

    /// Ensemble size.
    pub fn n_trees(self) -> usize {
        match self {
            ForestShape::Magic => 24,
            ForestShape::Ranking => 600,
            ForestShape::Deep => 12,
        }
    }

    /// Depth cap.
    pub fn max_depth(self) -> usize {
        match self {
            ForestShape::Magic => 10,
            ForestShape::Ranking => 6,
            ForestShape::Deep => 18,
        }
    }

    /// Feature count of the synthetic workload.
    pub fn n_features(self) -> usize {
        match self {
            ForestShape::Magic => 10,
            ForestShape::Ranking => 32,
            ForestShape::Deep => 16,
        }
    }

    /// Class count of the synthetic workload.
    pub fn n_classes(self) -> usize {
        match self {
            ForestShape::Magic | ForestShape::Ranking => 2,
            ForestShape::Deep => 3,
        }
    }

    /// Scored-sample count of the benchmark workload.
    pub fn n_samples(self) -> usize {
        match self {
            ForestShape::Magic | ForestShape::Deep => 4096,
            // The ranking forest itself is the memory hog; a smaller
            // batch keeps a full-registry sweep affordable.
            ForestShape::Ranking => 2048,
        }
    }

    /// Generates the preset's synthetic workload (deterministic in
    /// `seed`), spanning both signs so flipped FLInt thresholds occur.
    pub fn dataset(self, seed: u64) -> Dataset {
        SynthSpec::new(self.n_samples(), self.n_features(), self.n_classes())
            .cluster_std(1.2)
            .negative_fraction(0.5)
            .seed(seed)
            .generate()
    }

    /// Trains the preset's forest on `data`.
    ///
    /// # Panics
    ///
    /// Panics if training fails (the synthetic workloads always
    /// train).
    pub fn train(self, data: &Dataset, seed: u64) -> RandomForest {
        let config = ForestConfig {
            seed,
            ..ForestConfig::grid(self.n_trees(), self.max_depth())
        };
        RandomForest::fit(data, &config).expect("shape presets train on their own workloads")
    }
}

impl core::fmt::Display for ForestShape {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_round_trip_case_insensitively() {
        for shape in ForestShape::ALL {
            assert_eq!(ForestShape::parse(shape.name()), Some(shape));
            assert_eq!(
                ForestShape::parse(&shape.name().to_uppercase()),
                Some(shape)
            );
            assert_eq!(shape.to_string(), shape.name());
            assert!(!shape.describe().is_empty());
        }
        assert_eq!(ForestShape::parse("bonsai"), None);
    }

    #[test]
    fn ranking_is_the_wide_shallow_preset() {
        // The acceptance shape for the bandwidth-bound f16 claim: many
        // hundreds of trees, shallow depth.
        assert!(ForestShape::Ranking.n_trees() >= 200);
        assert!(ForestShape::Ranking.max_depth() <= 8);
        assert!(ForestShape::Deep.max_depth() > ForestShape::Magic.max_depth());
    }

    #[test]
    fn presets_generate_and_train_consistently() {
        // Magic only — the ranking preset is deliberately too big for a
        // unit test, and the plumbing is shape-independent.
        let shape = ForestShape::Magic;
        let data = shape.dataset(7);
        assert_eq!(data.n_samples(), shape.n_samples());
        assert_eq!(data.n_features(), shape.n_features());
        assert_eq!(data.n_classes(), shape.n_classes());
        let forest = shape.train(&data, 7);
        assert_eq!(forest.n_trees(), shape.n_trees());
        assert!(forest.depth() <= shape.max_depth());
        assert_eq!(forest.n_features(), shape.n_features());
        let again = shape.train(&shape.dataset(7), 7);
        assert_eq!(
            forest.predict_majority(data.sample(0)),
            again.predict_majority(data.sample(0)),
            "presets are deterministic in the seed"
        );
    }
}
