//! # flint-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | Artifact | Function / target |
//! |---|---|
//! | Table I (machines) | [`report::table1`] |
//! | Fig. 2 (SI vs FP map) | [`report::fig2`] |
//! | Fig. 3 (4 configs × 4 machines vs depth) | [`report::fig3_panel`], `cargo bench --bench fig3_host` |
//! | Table II (aggregate normalized times) | [`report::table2`] |
//! | Fig. 4 (C vs ASM vs depth) | [`report::fig4`], `cargo bench --bench fig4_host` |
//! | Table III (ASM aggregates) | [`report::table3`] |
//! | No-FPU ablation (ours) | [`report::ablation_nofpu`] |
//! | Batch throughput (ours) | [`experiments::batch_throughput_table`], `flint bench`, `cargo bench --bench batch_throughput` |
//! | Serving latency (ours) | [`loadgen::closed_loop`], `cargo bench --bench serve_latency` |
//!
//! The `figures` binary prints any of them:
//! `cargo run -p flint-bench --bin figures -- table2`.
//!
//! Host-side throughput experiments run over the `flint-exec` engine
//! registry ([`flint_exec::EngineKind`]): every registered prediction
//! path — scalar/blocked if-else backends, QuickScorer, the codegen
//! VM — is measured through the one [`flint_exec::Predictor`] API, and
//! equivalence against the forest's majority vote is asserted before
//! any timing. The `flint bench` CLI subcommand reproduces the
//! `batch_throughput` table through the same function, without cargo
//! or criterion.
//!
//! Simulated numbers come from `flint-sim` cost models (the four paper
//! machines are not available); host wall-clock shape comes from the
//! criterion benches in `benches/`. `EXPERIMENTS.md` records
//! paper-vs-measured for both.
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod loadgen;
pub mod report;
pub mod shapes;

pub use loadgen::{
    closed_loop, open_loop, LatencySummary, LoadReport, OpenLoopReport, OpenLoopSpec,
};
pub use shapes::ForestShape;

pub use experiments::{
    aggregate, batch_throughput_table, fig2_series, fig3_series, geometric_mean, train_grid,
    variance, AggregateRow, DepthPoint, GridPoint, GridScale, ThroughputRow, PAPER_DEPTHS,
    PAPER_TREES,
};
