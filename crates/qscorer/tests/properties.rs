//! Property tests: QuickScorer (both comparison modes) must equal the
//! reference root-to-leaf traversal on arbitrary trained trees and
//! arbitrary non-NaN bit patterns.

use flint_data::synth::SynthSpec;
use flint_forest::train::{train_tree, TrainConfig};
use flint_qscorer::{LeafBitset, QsCompare, QsTree};
use proptest::prelude::*;

fn features(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(
        any::<u32>()
            .prop_map(f32::from_bits)
            .prop_filter("NaN", |v| !v.is_nan()),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quickscorer_equals_reference(
        seed in 0u64..128,
        depth in 1usize..9,
        x in features(4),
    ) {
        let data = SynthSpec::new(140, 4, 3)
            .cluster_std(1.2)
            .negative_fraction(0.5)
            .seed(seed)
            .generate();
        let tree = train_tree(&data, &TrainConfig::with_max_depth(depth)).expect("trains");
        let qs = QsTree::build(&tree);
        let mut scratch = LeafBitset::all_set(qs.n_leaves());
        let want = tree.predict(&x);
        prop_assert_eq!(qs.score(&x, QsCompare::Float, &mut scratch), want);
        prop_assert_eq!(qs.score(&x, QsCompare::Flint, &mut scratch), want);
    }

    /// After any score, the surviving-leaf count equals the number of
    /// leaves not excluded by false nodes — and at least one survives.
    #[test]
    fn at_least_one_leaf_always_survives(
        seed in 0u64..128,
        x in features(3),
    ) {
        let data = SynthSpec::new(120, 3, 2).seed(seed).generate();
        let tree = train_tree(&data, &TrainConfig::with_max_depth(7)).expect("trains");
        let qs = QsTree::build(&tree);
        let mut scratch = LeafBitset::all_set(qs.n_leaves());
        let _ = qs.score(&x, QsCompare::Flint, &mut scratch);
        prop_assert!(scratch.count_ones() >= 1);
        // The exit leaf must be reachable by the reference traversal.
        let exit = scratch.first_set().expect("non-empty");
        prop_assert_eq!(qs.leaf_class(exit), tree.predict(&x));
    }

    /// Deep trees exceed 64 leaves, exercising the multi-word bitset.
    #[test]
    fn wide_trees_use_multiword_bitsets(seed in 0u64..32, x in features(4)) {
        let data = SynthSpec::new(600, 4, 3)
            .cluster_std(2.0)
            .seed(seed)
            .generate();
        let tree = train_tree(&data, &TrainConfig::with_max_depth(12)).expect("trains");
        let qs = QsTree::build(&tree);
        prop_assume!(qs.n_leaves() > 64);
        let mut scratch = LeafBitset::all_set(qs.n_leaves());
        prop_assert_eq!(
            qs.score(&x, QsCompare::Flint, &mut scratch),
            tree.predict(&x)
        );
    }
}
