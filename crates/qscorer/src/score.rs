//! The QuickScorer traversal and forest-level scoring.

use crate::bitset::LeafBitset;
use crate::build::QsTree;
use flint_core::FlintOrd;
use flint_data::FeatureMatrix;
use flint_forest::RandomForest;

/// Which comparison the per-feature threshold scan uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QsCompare {
    /// IEEE float comparisons (the original algorithm).
    Float,
    /// FLInt integer order-key comparisons — no float instruction in
    /// the scan.
    Flint,
}

impl QsTree {
    /// Scores one feature vector: returns the exit leaf's class.
    ///
    /// Walks every feature's ascending threshold list, clearing the
    /// left-leaf range of each *false* node (`threshold < x`), then
    /// reads the lowest surviving leaf.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` is smaller than the tree's feature
    /// count, or if a feature value is NaN in [`QsCompare::Flint`] mode
    /// (debug builds).
    pub fn score(&self, features: &[f32], compare: QsCompare, scratch: &mut LeafBitset) -> u32 {
        debug_assert_eq!(scratch.len(), self.n_leaves(), "scratch bitset size");
        scratch.reset_all_set();
        match compare {
            QsCompare::Float => {
                for (f, conditions) in self.by_feature.iter().enumerate() {
                    let x = features[f];
                    for c in conditions {
                        if c.threshold < x {
                            scratch.clear_range(c.leaf_start as usize, c.leaf_end as usize);
                        } else {
                            break; // sorted ascending: the rest are true
                        }
                    }
                }
            }
            QsCompare::Flint => {
                for (f, conditions) in self.by_feature.iter().enumerate() {
                    let x_key = FlintOrd::new(features[f]).order_key();
                    for c in conditions {
                        if c.threshold_key < x_key {
                            scratch.clear_range(c.leaf_start as usize, c.leaf_end as usize);
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        let exit = scratch
            .first_set()
            .expect("QuickScorer invariant: at least one leaf survives");
        self.leaf_class(exit)
    }
}

/// Reusable per-forest scoring state: one reachability bitset per tree
/// plus one vote accumulator, allocated once and reused across
/// predictions so the hot loop performs no allocation at all.
///
/// Build with [`QsForest::scratch`]; feed to
/// [`QsForest::predict_with_scratch`].
#[derive(Debug, Clone)]
pub struct QsScratch {
    bitsets: Vec<LeafBitset>,
    votes: Vec<u32>,
}

/// A whole forest compiled for QuickScorer traversal with majority-vote
/// aggregation (same tie-breaking as `flint-exec`).
///
/// # Examples
///
/// ```
/// use flint_data::synth::SynthSpec;
/// use flint_forest::{ForestConfig, RandomForest};
/// use flint_qscorer::{QsCompare, QsForest};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = SynthSpec::new(120, 4, 2).generate();
/// let forest = RandomForest::fit(&data, &ForestConfig::grid(4, 6))?;
/// let qs = QsForest::build(&forest);
/// let class = qs.predict(data.sample(0), QsCompare::Flint);
/// assert!(class < 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QsForest {
    trees: Vec<QsTree>,
    n_classes: usize,
    n_features: usize,
}

impl QsForest {
    /// Compiles every tree of `forest`.
    pub fn build(forest: &RandomForest) -> Self {
        Self {
            trees: forest.trees().iter().map(QsTree::build).collect(),
            n_classes: forest.n_classes(),
            n_features: forest.n_features(),
        }
    }

    /// The compiled trees.
    pub fn trees(&self) -> &[QsTree] {
        &self.trees
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Expected feature vector length.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Allocates scoring state sized for this forest, reusable across
    /// any number of predictions.
    pub fn scratch(&self) -> QsScratch {
        QsScratch {
            bitsets: self
                .trees
                .iter()
                .map(|t| LeafBitset::all_set(t.n_leaves()))
                .collect(),
            votes: vec![0u32; self.n_classes],
        }
    }

    /// Majority-vote prediction (ties to the lower class index).
    ///
    /// Allocates a fresh [`QsScratch`] per call; hot paths should hold
    /// one and use [`QsForest::predict_with_scratch`].
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features`.
    pub fn predict(&self, features: &[f32], compare: QsCompare) -> u32 {
        self.predict_with_scratch(features, compare, &mut self.scratch())
    }

    /// Majority-vote prediction through caller-owned scratch: the hot
    /// loop performs no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features`, or if `scratch` was
    /// built for a different forest (debug builds).
    pub fn predict_with_scratch(
        &self,
        features: &[f32],
        compare: QsCompare,
        scratch: &mut QsScratch,
    ) -> u32 {
        self.votes_with_scratch(features, compare, scratch);
        flint_forest::metrics::majority_vote(&scratch.votes)
    }

    /// Fills `scratch.votes` with the per-class vote histogram (one
    /// vote per tree) and returns it — the partial a forest shard
    /// reports for distributed merge.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features`, or if `scratch` was
    /// built for a different forest (debug builds).
    pub fn votes_with_scratch<'s>(
        &self,
        features: &[f32],
        compare: QsCompare,
        scratch: &'s mut QsScratch,
    ) -> &'s [u32] {
        assert_eq!(features.len(), self.n_features, "feature vector length");
        debug_assert_eq!(
            scratch.bitsets.len(),
            self.trees.len(),
            "scratch forest size"
        );
        scratch.votes.fill(0);
        for (tree, bitset) in self.trees.iter().zip(&mut scratch.bitsets) {
            scratch.votes[tree.score(features, compare, bitset) as usize] += 1;
        }
        &scratch.votes
    }

    /// Batch prediction over a structure-of-arrays [`FeatureMatrix`]
    /// through one reused [`QsScratch`] and one reused row buffer (the
    /// performance shape QuickScorer is built for): bitsets, the vote
    /// accumulator and the gather buffer are allocated once for the
    /// whole batch instead of per sample, and callers no longer build
    /// `Vec<&[f32]>` row-pointer tables.
    ///
    /// # Panics
    ///
    /// Panics if `matrix.n_features() != n_features()`.
    pub fn predict_batch(&self, matrix: &FeatureMatrix, compare: QsCompare) -> Vec<u32> {
        assert_eq!(matrix.n_features(), self.n_features, "feature matrix width");
        let mut scratch = self.scratch();
        let mut row = vec![0.0f32; self.n_features];
        (0..matrix.n_samples())
            .map(|i| {
                matrix.gather_row(i, &mut row);
                self.predict_with_scratch(&row, compare, &mut scratch)
            })
            .collect()
    }

    /// Batch prediction over row slices, for callers whose data is
    /// already row-major. Same scratch reuse as
    /// [`predict_batch`](Self::predict_batch).
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `n_features()`.
    pub fn predict_rows<'a, I>(&self, rows: I, compare: QsCompare) -> Vec<u32>
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let mut scratch = self.scratch();
        rows.into_iter()
            .map(|features| self.predict_with_scratch(features, compare, &mut scratch))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_forest::example_tree;

    #[test]
    fn example_tree_scoring() {
        let tree = example_tree();
        let qs = QsTree::build(&tree);
        let mut scratch = LeafBitset::all_set(qs.n_leaves());
        for input in [
            [0.0f32, -2.0],
            [0.0, 0.0],
            [1.0, 0.0],
            [0.5, -1.25],
            [-3.0, 7.0],
        ] {
            let want = tree.predict(&input);
            assert_eq!(
                qs.score(&input, QsCompare::Float, &mut scratch),
                want,
                "{input:?}"
            );
            assert_eq!(
                qs.score(&input, QsCompare::Flint, &mut scratch),
                want,
                "{input:?}"
            );
        }
    }

    #[test]
    fn forest_agrees_with_reference_majority() {
        use flint_data::synth::SynthSpec;
        use flint_forest::ForestConfig;
        let data = SynthSpec::new(250, 5, 3)
            .negative_fraction(0.5)
            .seed(31)
            .generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(6, 9)).expect("trains");
        let qs = QsForest::build(&forest);
        let reference = |x: &[f32]| -> u32 {
            let mut votes = vec![0u32; forest.n_classes()];
            for tree in forest.trees() {
                votes[tree.predict(x) as usize] += 1;
            }
            votes
                .iter()
                .enumerate()
                .max_by_key(|&(i, &v)| (v, core::cmp::Reverse(i)))
                .map(|(i, _)| i as u32)
                .expect("non-empty")
        };
        for i in 0..data.n_samples() {
            let x = data.sample(i);
            let want = reference(x);
            assert_eq!(qs.predict(x, QsCompare::Float), want, "sample {i}");
            assert_eq!(qs.predict(x, QsCompare::Flint), want, "sample {i}");
        }
    }

    #[test]
    fn batch_matches_single() {
        use flint_data::synth::SynthSpec;
        use flint_forest::ForestConfig;
        let data = SynthSpec::new(100, 3, 2).seed(1).generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(3, 5)).expect("trains");
        let qs = QsForest::build(&forest);
        let matrix = FeatureMatrix::from_dataset(&data);
        let batch = qs.predict_batch(&matrix, QsCompare::Flint);
        let rows = qs.predict_rows(
            (0..data.n_samples()).map(|i| data.sample(i)),
            QsCompare::Flint,
        );
        for (i, &label) in batch.iter().enumerate() {
            assert_eq!(label, qs.predict(data.sample(i), QsCompare::Flint));
        }
        assert_eq!(batch, rows, "matrix and row-iterator paths agree");
    }

    #[test]
    #[should_panic(expected = "feature matrix width")]
    fn batch_wrong_width_panics() {
        use flint_data::synth::SynthSpec;
        use flint_forest::ForestConfig;
        let data = SynthSpec::new(60, 3, 2).seed(2).generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(2, 4)).expect("trains");
        let qs = QsForest::build(&forest);
        let bad = FeatureMatrix::from_row_major(1, 2, &[0.0, 0.0]);
        let _ = qs.predict_batch(&bad, QsCompare::Flint);
    }

    #[test]
    fn reused_scratch_never_leaks_state_between_samples() {
        use flint_data::synth::SynthSpec;
        use flint_forest::ForestConfig;
        let data = SynthSpec::new(90, 3, 3).seed(9).generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(4, 6)).expect("trains");
        let qs = QsForest::build(&forest);
        let mut scratch = qs.scratch();
        for compare in [QsCompare::Float, QsCompare::Flint] {
            for i in 0..data.n_samples() {
                let x = data.sample(i);
                assert_eq!(
                    qs.predict_with_scratch(x, compare, &mut scratch),
                    qs.predict(x, compare),
                    "sample {i} ({compare:?})"
                );
            }
        }
    }

    #[test]
    fn boundary_inputs_agree_with_reference() {
        let tree = example_tree();
        let qs = QsTree::build(&tree);
        let mut scratch = LeafBitset::all_set(qs.n_leaves());
        let specials = [
            0.0f32,
            -0.0,
            0.5,
            -1.25,
            f32::MAX,
            f32::MIN,
            1e-40,
            -1e-40,
            f32::INFINITY,
            f32::NEG_INFINITY,
        ];
        for &a in &specials {
            for &b in &specials {
                let input = [a, b];
                let want = tree.predict(&input);
                assert_eq!(
                    qs.score(&input, QsCompare::Float, &mut scratch),
                    want,
                    "float ({a:e}, {b:e})"
                );
                assert_eq!(
                    qs.score(&input, QsCompare::Flint, &mut scratch),
                    want,
                    "flint ({a:e}, {b:e})"
                );
            }
        }
    }
}
