//! The QuickScorer traversal and forest-level scoring.

use crate::bitset::LeafBitset;
use crate::build::QsTree;
use flint_core::FlintOrd;
use flint_forest::RandomForest;

/// Which comparison the per-feature threshold scan uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QsCompare {
    /// IEEE float comparisons (the original algorithm).
    Float,
    /// FLInt integer order-key comparisons — no float instruction in
    /// the scan.
    Flint,
}

impl QsTree {
    /// Scores one feature vector: returns the exit leaf's class.
    ///
    /// Walks every feature's ascending threshold list, clearing the
    /// left-leaf range of each *false* node (`threshold < x`), then
    /// reads the lowest surviving leaf.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` is smaller than the tree's feature
    /// count, or if a feature value is NaN in [`QsCompare::Flint`] mode
    /// (debug builds).
    pub fn score(&self, features: &[f32], compare: QsCompare, scratch: &mut LeafBitset) -> u32 {
        debug_assert_eq!(scratch.len(), self.n_leaves(), "scratch bitset size");
        scratch.reset_all_set();
        match compare {
            QsCompare::Float => {
                for (f, conditions) in self.by_feature.iter().enumerate() {
                    let x = features[f];
                    for c in conditions {
                        if c.threshold < x {
                            scratch.clear_range(c.leaf_start as usize, c.leaf_end as usize);
                        } else {
                            break; // sorted ascending: the rest are true
                        }
                    }
                }
            }
            QsCompare::Flint => {
                for (f, conditions) in self.by_feature.iter().enumerate() {
                    let x_key = FlintOrd::new(features[f]).order_key();
                    for c in conditions {
                        if c.threshold_key < x_key {
                            scratch.clear_range(c.leaf_start as usize, c.leaf_end as usize);
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        let exit = scratch
            .first_set()
            .expect("QuickScorer invariant: at least one leaf survives");
        self.leaf_class(exit)
    }
}

/// A whole forest compiled for QuickScorer traversal with majority-vote
/// aggregation (same tie-breaking as `flint-exec`).
///
/// # Examples
///
/// ```
/// use flint_data::synth::SynthSpec;
/// use flint_forest::{ForestConfig, RandomForest};
/// use flint_qscorer::{QsCompare, QsForest};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = SynthSpec::new(120, 4, 2).generate();
/// let forest = RandomForest::fit(&data, &ForestConfig::grid(4, 6))?;
/// let qs = QsForest::build(&forest);
/// let class = qs.predict(data.sample(0), QsCompare::Flint);
/// assert!(class < 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QsForest {
    trees: Vec<QsTree>,
    n_classes: usize,
    n_features: usize,
}

impl QsForest {
    /// Compiles every tree of `forest`.
    pub fn build(forest: &RandomForest) -> Self {
        Self {
            trees: forest.trees().iter().map(QsTree::build).collect(),
            n_classes: forest.n_classes(),
            n_features: forest.n_features(),
        }
    }

    /// The compiled trees.
    pub fn trees(&self) -> &[QsTree] {
        &self.trees
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Majority-vote prediction (ties to the lower class index).
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features`.
    pub fn predict(&self, features: &[f32], compare: QsCompare) -> u32 {
        assert_eq!(features.len(), self.n_features, "feature vector length");
        let mut votes = vec![0u32; self.n_classes];
        for tree in &self.trees {
            let mut scratch = LeafBitset::all_set(tree.n_leaves());
            votes[tree.score(features, compare, &mut scratch) as usize] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &v)| (v, core::cmp::Reverse(i)))
            .map(|(i, _)| i as u32)
            .expect("n_classes >= 1")
    }

    /// Batch prediction reusing per-tree scratch bitsets (the
    /// performance shape QuickScorer is built for).
    pub fn predict_batch(&self, batch: &[&[f32]], compare: QsCompare) -> Vec<u32> {
        let mut scratches: Vec<LeafBitset> = self
            .trees
            .iter()
            .map(|t| LeafBitset::all_set(t.n_leaves()))
            .collect();
        batch
            .iter()
            .map(|features| {
                assert_eq!(features.len(), self.n_features, "feature vector length");
                let mut votes = vec![0u32; self.n_classes];
                for (tree, scratch) in self.trees.iter().zip(&mut scratches) {
                    votes[tree.score(features, compare, scratch) as usize] += 1;
                }
                votes
                    .iter()
                    .enumerate()
                    .max_by_key(|&(i, &v)| (v, core::cmp::Reverse(i)))
                    .map(|(i, _)| i as u32)
                    .expect("n_classes >= 1")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_forest::example_tree;

    #[test]
    fn example_tree_scoring() {
        let tree = example_tree();
        let qs = QsTree::build(&tree);
        let mut scratch = LeafBitset::all_set(qs.n_leaves());
        for input in [
            [0.0f32, -2.0],
            [0.0, 0.0],
            [1.0, 0.0],
            [0.5, -1.25],
            [-3.0, 7.0],
        ] {
            let want = tree.predict(&input);
            assert_eq!(qs.score(&input, QsCompare::Float, &mut scratch), want, "{input:?}");
            assert_eq!(qs.score(&input, QsCompare::Flint, &mut scratch), want, "{input:?}");
        }
    }

    #[test]
    fn forest_agrees_with_reference_majority() {
        use flint_data::synth::SynthSpec;
        use flint_forest::ForestConfig;
        let data = SynthSpec::new(250, 5, 3)
            .negative_fraction(0.5)
            .seed(31)
            .generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(6, 9)).expect("trains");
        let qs = QsForest::build(&forest);
        let reference = |x: &[f32]| -> u32 {
            let mut votes = vec![0u32; forest.n_classes()];
            for tree in forest.trees() {
                votes[tree.predict(x) as usize] += 1;
            }
            votes
                .iter()
                .enumerate()
                .max_by_key(|&(i, &v)| (v, core::cmp::Reverse(i)))
                .map(|(i, _)| i as u32)
                .expect("non-empty")
        };
        for i in 0..data.n_samples() {
            let x = data.sample(i);
            let want = reference(x);
            assert_eq!(qs.predict(x, QsCompare::Float), want, "sample {i}");
            assert_eq!(qs.predict(x, QsCompare::Flint), want, "sample {i}");
        }
    }

    #[test]
    fn batch_matches_single() {
        use flint_data::synth::SynthSpec;
        use flint_forest::ForestConfig;
        let data = SynthSpec::new(100, 3, 2).seed(1).generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(3, 5)).expect("trains");
        let qs = QsForest::build(&forest);
        let rows: Vec<&[f32]> = (0..data.n_samples()).map(|i| data.sample(i)).collect();
        let batch = qs.predict_batch(&rows, QsCompare::Flint);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(batch[i], qs.predict(row, QsCompare::Flint));
        }
    }

    #[test]
    fn boundary_inputs_agree_with_reference() {
        let tree = example_tree();
        let qs = QsTree::build(&tree);
        let mut scratch = LeafBitset::all_set(qs.n_leaves());
        let specials = [0.0f32, -0.0, 0.5, -1.25, f32::MAX, f32::MIN, 1e-40, -1e-40,
                        f32::INFINITY, f32::NEG_INFINITY];
        for &a in &specials {
            for &b in &specials {
                let input = [a, b];
                let want = tree.predict(&input);
                assert_eq!(
                    qs.score(&input, QsCompare::Float, &mut scratch),
                    want,
                    "float ({a:e}, {b:e})"
                );
                assert_eq!(
                    qs.score(&input, QsCompare::Flint, &mut scratch),
                    want,
                    "flint ({a:e}, {b:e})"
                );
            }
        }
    }
}
