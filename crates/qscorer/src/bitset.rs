//! A fixed-capacity leaf bitset for the QuickScorer traversal.
//!
//! QuickScorer maintains, per tree and per input, a bitvector with one
//! bit per leaf: bit set means "this leaf is still reachable". False
//! nodes clear the bits of their left subtree (a *contiguous* range in
//! in-order leaf numbering), and the exit leaf is the lowest surviving
//! bit. Trees from the paper's depth sweeps can have thousands of
//! leaves, so the bitset is a `Vec<u64>` rather than the single `u64`
//! of the original learning-to-rank setting.

/// A bitset over leaf indices `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafBitset {
    words: Vec<u64>,
    len: usize,
}

impl LeafBitset {
    /// A bitset with all `len` bits set ("every leaf reachable").
    pub fn all_set(len: usize) -> Self {
        let n_words = len.div_ceil(64);
        let mut words = vec![u64::MAX; n_words];
        // Mask off the bits beyond `len` in the last word.
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        if len == 0 {
            words.clear();
        }
        Self { words, len }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the bitset addresses no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Clears the bit range `[start, end)` — the "left subtree becomes
    /// unreachable" update of a false node.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > len()`.
    pub fn clear_range(&mut self, start: usize, end: usize) {
        assert!(start <= end && end <= self.len, "range out of bounds");
        if start == end {
            return;
        }
        let (first_word, first_bit) = (start / 64, start % 64);
        let (last_word, last_bit) = ((end - 1) / 64, (end - 1) % 64);
        if first_word == last_word {
            // Bits first_bit..=last_bit within one word.
            let width = last_bit - first_bit + 1;
            let mask = if width == 64 {
                u64::MAX
            } else {
                ((1u64 << width) - 1) << first_bit
            };
            self.words[first_word] &= !mask;
            return;
        }
        self.words[first_word] &= (1u64 << first_bit) - 1;
        for w in &mut self.words[first_word + 1..last_word] {
            *w = 0;
        }
        let tail_mask = if last_bit == 63 {
            u64::MAX
        } else {
            (1u64 << (last_bit + 1)) - 1
        };
        self.words[last_word] &= !tail_mask;
    }

    /// Index of the lowest set bit — QuickScorer's exit leaf.
    pub fn first_set(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Whether bit `i` is set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "index out of bounds");
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Resets every bit to set (reuse between inferences without
    /// reallocating).
    pub fn reset_all_set(&mut self) {
        let full = self.len / 64;
        for w in &mut self.words[..full] {
            *w = u64::MAX;
        }
        if !self.len.is_multiple_of(64) {
            self.words[full] = (1u64 << (self.len % 64)) - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_set_and_count() {
        for len in [0usize, 1, 63, 64, 65, 130] {
            let b = LeafBitset::all_set(len);
            assert_eq!(b.len(), len);
            assert_eq!(b.count_ones(), len, "len {len}");
            assert_eq!(b.first_set(), if len == 0 { None } else { Some(0) });
        }
    }

    #[test]
    fn clear_range_within_one_word() {
        let mut b = LeafBitset::all_set(64);
        b.clear_range(3, 7);
        assert_eq!(b.count_ones(), 60);
        assert!(b.get(2) && !b.get(3) && !b.get(6) && b.get(7));
        assert_eq!(b.first_set(), Some(0));
        b.clear_range(0, 3);
        assert_eq!(b.first_set(), Some(7));
    }

    #[test]
    fn clear_range_across_words() {
        let mut b = LeafBitset::all_set(200);
        b.clear_range(60, 140);
        assert_eq!(b.count_ones(), 200 - 80);
        assert!(b.get(59) && !b.get(60) && !b.get(139) && b.get(140));
        b.clear_range(0, 60);
        assert_eq!(b.first_set(), Some(140));
    }

    #[test]
    fn clear_full_and_empty_ranges() {
        let mut b = LeafBitset::all_set(100);
        b.clear_range(40, 40); // empty: no-op
        assert_eq!(b.count_ones(), 100);
        b.clear_range(0, 100);
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.first_set(), None);
    }

    #[test]
    fn clear_exact_word_boundaries() {
        let mut b = LeafBitset::all_set(192);
        b.clear_range(64, 128); // exactly the middle word
        assert!(b.get(63) && !b.get(64) && !b.get(127) && b.get(128));
        assert_eq!(b.count_ones(), 128);
    }

    #[test]
    fn reset_restores_everything() {
        let mut b = LeafBitset::all_set(77);
        b.clear_range(10, 70);
        assert_ne!(b.count_ones(), 77);
        b.reset_all_set();
        assert_eq!(b.count_ones(), 77);
        // Bits beyond len stay clear (first_set semantics intact).
        assert_eq!(b.first_set(), Some(0));
    }

    #[test]
    #[should_panic(expected = "range out of bounds")]
    fn clear_range_bounds_checked() {
        let mut b = LeafBitset::all_set(10);
        b.clear_range(5, 11);
    }
}
