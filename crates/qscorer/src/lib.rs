//! # flint-qscorer — QuickScorer traversal with a FLInt mode
//!
//! The FLInt paper's related work cites QuickScorer (Lucchese et al.,
//! SIGIR 2015/2016) as the flagship *algorithmic refinement* for tree
//! ensemble inference: instead of root-to-leaf pointer chasing, all
//! split conditions are grouped per feature and sorted by threshold;
//! scoring scans each feature's ascending thresholds, clears the
//! left-subtree leaf range of every *false* node from a reachability
//! bitset, and reads the exit leaf as the lowest surviving bit.
//!
//! This crate implements that traversal for the workspace's
//! classification forests — and demonstrates the paper's future-work
//! claim that "FLInts can be integrated into other applications": in
//! [`QsCompare::Flint`] mode the threshold scan compares FLInt order
//! keys, executing **no float instruction at all** while producing
//! bit-identical predictions (asserted against the reference traversal
//! and the if-else backends).
//!
//! ```
//! use flint_data::synth::SynthSpec;
//! use flint_forest::{ForestConfig, RandomForest};
//! use flint_qscorer::{QsCompare, QsForest};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = SynthSpec::new(150, 4, 3).generate();
//! let forest = RandomForest::fit(&data, &ForestConfig::grid(5, 7))?;
//! let qs = QsForest::build(&forest);
//! assert_eq!(
//!     qs.predict(data.sample(0), QsCompare::Flint),
//!     qs.predict(data.sample(0), QsCompare::Float),
//! );
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod bitset;
pub mod build;
pub mod score;

pub use bitset::LeafBitset;
pub use build::{Condition, QsTree};
pub use score::{QsCompare, QsForest, QsScratch};
