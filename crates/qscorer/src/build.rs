//! Building the QuickScorer representation from a decision tree.
//!
//! Leaves are numbered in-order (left to right), so the set of leaves
//! under any node's left subtree is a contiguous index range. For every
//! split node we record `(threshold, feature, left-leaf range)`; during
//! scoring, a node whose test `x[f] <= t` is **false** clears its left
//! range from the reachability bitset. Conditions are grouped by
//! feature and sorted by threshold ascending, so scoring one feature is
//! a linear scan that stops at the first true condition (`t >= x`):
//! exactly the Lucchese et al. traversal.
//!
//! Thresholds are stored twice: as floats and as FLInt order keys
//! ([`flint_core::FlintOrd::order_key`]), so the scan can run either
//! with float comparisons or with integer comparisons only — FLInt
//! applied to a second inference algorithm, as the paper's future work
//! suggests.

use flint_core::FlintOrd;
use flint_forest::{DecisionTree, Node, NodeId};

/// One false-node condition of the QuickScorer representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Condition {
    /// Split value.
    pub threshold: f32,
    /// FLInt order key of the split value (monotone with `threshold`).
    pub threshold_key: i32,
    /// First leaf index of the node's left subtree.
    pub leaf_start: u32,
    /// One past the last leaf index of the node's left subtree.
    pub leaf_end: u32,
}

/// A tree compiled for QuickScorer traversal.
#[derive(Debug, Clone, PartialEq)]
pub struct QsTree {
    /// Per feature: conditions sorted by ascending threshold.
    pub(crate) by_feature: Vec<Vec<Condition>>,
    /// Class of each leaf, in in-order numbering.
    pub(crate) leaf_classes: Vec<u32>,
}

impl QsTree {
    /// Compiles `tree` into the per-feature sorted-condition form.
    pub fn build(tree: &DecisionTree) -> Self {
        let mut by_feature: Vec<Vec<Condition>> = vec![Vec::new(); tree.n_features()];
        let mut leaf_classes = Vec::with_capacity(tree.n_leaves());
        collect(tree, NodeId::ROOT, &mut by_feature, &mut leaf_classes);
        for conditions in &mut by_feature {
            conditions.sort_by_key(|a| a.threshold_key);
        }
        Self {
            by_feature,
            leaf_classes,
        }
    }

    /// Number of leaves (bits in the traversal bitset).
    pub fn n_leaves(&self) -> usize {
        self.leaf_classes.len()
    }

    /// The class of leaf `i` (in-order numbering).
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_leaves()`.
    pub fn leaf_class(&self, i: usize) -> u32 {
        self.leaf_classes[i]
    }

    /// The sorted conditions testing `feature`.
    pub fn conditions(&self, feature: usize) -> &[Condition] {
        &self.by_feature[feature]
    }
}

/// In-order DFS: returns the leaf index range `[start, end)` covered by
/// the subtree rooted at `id`, appending leaf classes as encountered.
fn collect(
    tree: &DecisionTree,
    id: NodeId,
    by_feature: &mut [Vec<Condition>],
    leaf_classes: &mut Vec<u32>,
) -> (u32, u32) {
    match &tree.nodes()[id.index()] {
        Node::Leaf { class, .. } => {
            let idx = leaf_classes.len() as u32;
            leaf_classes.push(*class);
            (idx, idx + 1)
        }
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            let (l_start, l_end) = collect(tree, *left, by_feature, leaf_classes);
            let (_, r_end) = collect(tree, *right, by_feature, leaf_classes);
            // -0.0 -> +0.0 rewrite (Section IV-B of the paper): with it,
            // `key(t) < key(x)` coincides with the IEEE `t < x` the
            // reference traversal evaluates, for every non-NaN input.
            let effective = if *threshold == 0.0 { 0.0 } else { *threshold };
            let key = FlintOrd::try_new(effective)
                .expect("validated trees have no NaN thresholds")
                .order_key();
            by_feature[*feature as usize].push(Condition {
                threshold: *threshold,
                threshold_key: key,
                leaf_start: l_start,
                leaf_end: l_end,
            });
            (l_start, r_end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_forest::example_tree;

    #[test]
    fn example_tree_structure() {
        // example_tree leaves in-order: n3 (class 0), n4 (class 1),
        // n2 (class 2).
        let qs = QsTree::build(&example_tree());
        assert_eq!(qs.n_leaves(), 3);
        assert_eq!(
            (0..3).map(|i| qs.leaf_class(i)).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Feature 0 (root, threshold 0.5): left subtree covers leaves 0..2.
        let c0 = qs.conditions(0);
        assert_eq!(c0.len(), 1);
        assert_eq!((c0[0].leaf_start, c0[0].leaf_end), (0, 2));
        assert_eq!(c0[0].threshold, 0.5);
        // Feature 1 (inner, threshold -1.25): left covers leaf 0 only.
        let c1 = qs.conditions(1);
        assert_eq!((c1[0].leaf_start, c1[0].leaf_end), (0, 1));
    }

    #[test]
    fn conditions_sorted_by_threshold() {
        use flint_data::synth::SynthSpec;
        use flint_forest::train::{train_tree, TrainConfig};
        let data = SynthSpec::new(250, 3, 2)
            .cluster_std(1.5)
            .seed(13)
            .generate();
        let tree = train_tree(&data, &TrainConfig::with_max_depth(8)).expect("trains");
        let qs = QsTree::build(&tree);
        for f in 0..3 {
            let conditions = qs.conditions(f);
            assert!(
                conditions
                    .windows(2)
                    .all(|w| w[0].threshold <= w[1].threshold),
                "feature {f} not sorted"
            );
            // Order keys must sort identically to the floats.
            assert!(conditions
                .windows(2)
                .all(|w| w[0].threshold_key <= w[1].threshold_key));
        }
        // Total conditions = split count; total leaves = leaf count.
        let total: usize = (0..3).map(|f| qs.conditions(f).len()).sum();
        assert_eq!(total, tree.n_nodes() - tree.n_leaves());
        assert_eq!(qs.n_leaves(), tree.n_leaves());
    }

    #[test]
    fn leaf_ranges_are_valid() {
        use flint_data::synth::SynthSpec;
        use flint_forest::train::{train_tree, TrainConfig};
        let data = SynthSpec::new(200, 4, 3).seed(77).generate();
        let tree = train_tree(&data, &TrainConfig::with_max_depth(6)).expect("trains");
        let qs = QsTree::build(&tree);
        for f in 0..4 {
            for c in qs.conditions(f) {
                assert!(c.leaf_start < c.leaf_end);
                assert!((c.leaf_end as usize) <= qs.n_leaves());
            }
        }
    }
}
