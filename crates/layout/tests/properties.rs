//! Property-based tests: every layout strategy yields a valid
//! permutation with the root first, on arbitrary trained trees, and the
//! CAGS cost metric never loses to the arena baseline by more than
//! noise on its own objective.

use flint_data::synth::SynthSpec;
use flint_forest::train::{train_tree, TrainConfig};
use flint_layout::{LayoutStrategy, TreeLayout, TreeProfile};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn layouts_are_permutations_with_root_first(
        seed in 0u64..500,
        depth in 1usize..8,
        block in 1usize..8,
    ) {
        let data = SynthSpec::new(120, 4, 3).cluster_std(1.0).seed(seed).generate();
        let tree = train_tree(&data, &TrainConfig::with_max_depth(depth)).expect("trains");
        let profile = TreeProfile::collect(&tree, &data);
        for strategy in [
            LayoutStrategy::ArenaOrder,
            LayoutStrategy::BreadthFirst,
            LayoutStrategy::HotPathDfs,
            LayoutStrategy::Cags { block_nodes: block },
        ] {
            let layout = TreeLayout::compute(&tree, &profile, strategy);
            prop_assert_eq!(layout.len(), tree.n_nodes());
            prop_assert_eq!(layout.node_at(0), flint_forest::NodeId::ROOT);
            let mut seen = vec![false; tree.n_nodes()];
            for k in 0..layout.len() {
                let id = layout.node_at(k);
                prop_assert!(!seen[id.index()]);
                seen[id.index()] = true;
                prop_assert_eq!(layout.position_of(id) as usize, k);
            }
        }
    }

    /// On its own objective (expected block transitions), the CAGS
    /// greedy layout never does worse than the arena order.
    #[test]
    fn cags_never_worse_than_arena_on_its_objective(
        seed in 0u64..500,
        block in 2usize..8,
    ) {
        let data = SynthSpec::new(150, 4, 2).cluster_std(1.2).seed(seed).generate();
        let tree = train_tree(&data, &TrainConfig::with_max_depth(7)).expect("trains");
        let profile = TreeProfile::collect(&tree, &data);
        let arena = TreeLayout::compute(&tree, &profile, LayoutStrategy::ArenaOrder);
        let cags = TreeLayout::compute(&tree, &profile, LayoutStrategy::Cags { block_nodes: block });
        let a = arena.expected_block_transitions(&tree, &profile, block);
        let c = cags.expected_block_transitions(&tree, &profile, block);
        prop_assert!(c <= a + 1e-9, "cags {c} vs arena {a} (block {block})");
    }

    /// Probabilities from a profile are always within [0, 1] and
    /// children's reach probabilities sum to their parent's.
    #[test]
    fn profile_probabilities_are_consistent(seed in 0u64..500) {
        use flint_forest::Node;
        let data = SynthSpec::new(100, 3, 2).seed(seed).generate();
        let tree = train_tree(&data, &TrainConfig::with_max_depth(6)).expect("trains");
        let profile = TreeProfile::collect(&tree, &data);
        for (i, node) in tree.nodes().iter().enumerate() {
            let id = flint_forest::NodeId(i as u32);
            let p = profile.left_probability(id);
            prop_assert!((0.0..=1.0).contains(&p));
            if let Node::Split { left, right, .. } = node {
                let reach = profile.reach_probability(id);
                let sum = profile.reach_probability(*left) + profile.reach_probability(*right);
                prop_assert!((reach - sum).abs() < 1e-9, "node {id}: {reach} vs {sum}");
            }
        }
    }
}
