//! Node layout computation: swapping and cache-aware grouping.
//!
//! CAGS transforms an if-else tree in two steps:
//!
//! 1. **Swapping** — at each split, order the children so the branch
//!    with higher empirical probability is the fallthrough (in our flat
//!    representation: placed immediately after the parent);
//! 2. **Grouping** — pack nodes into cache-block-sized groups so the
//!    hot path of the tree touches as few blocks as possible.
//!
//! The output is a [`TreeLayout`]: a permutation of the arena order.
//! The execution backends (`flint-exec`) materialize their flat node
//! arrays in this order, so the layout decision actually changes memory
//! behaviour rather than being a bookkeeping fiction.

use crate::profile::TreeProfile;
use flint_forest::{DecisionTree, Node, NodeId};

/// Node ordering strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutStrategy {
    /// Arena order (the naive baseline: the order training emitted,
    /// which is a pre-order DFS with left children first).
    ArenaOrder,
    /// Breadth-first order (level by level).
    BreadthFirst,
    /// Probability-swapped depth-first order: at each node descend into
    /// the hotter child first (swapping only, no grouping).
    HotPathDfs,
    /// Full CAGS: swapping plus greedy grouping into blocks of
    /// `block_nodes` nodes (a stand-in for cache lines / pages; the
    /// paper derives block sizes from binary section sizes).
    Cags {
        /// Nodes per block; typical cache-line budgets hold 4–8 nodes.
        block_nodes: usize,
    },
}

/// A computed node permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeLayout {
    /// `order[k]` is the node placed at flat position `k`.
    order: Vec<NodeId>,
    /// `position[node.index()]` is the flat position of `node`.
    position: Vec<u32>,
}

impl TreeLayout {
    /// Computes the layout of `tree` under `strategy`, using `profile`
    /// for branch probabilities.
    ///
    /// # Panics
    ///
    /// Panics if the profile does not cover the tree
    /// (`profile.len() != tree.n_nodes()`).
    pub fn compute(tree: &DecisionTree, profile: &TreeProfile, strategy: LayoutStrategy) -> Self {
        assert_eq!(profile.len(), tree.n_nodes(), "profile must cover the tree");
        let order = match strategy {
            LayoutStrategy::ArenaOrder => (0..tree.n_nodes() as u32).map(NodeId).collect(),
            LayoutStrategy::BreadthFirst => breadth_first(tree),
            LayoutStrategy::HotPathDfs => hot_dfs(tree, profile),
            LayoutStrategy::Cags { block_nodes } => {
                // Portfolio: greedy block growth is usually best, but on
                // some trees the swapped DFS (or even the arena order)
                // wins; evaluate all three on the objective and keep the
                // cheapest, so CAGS never regresses below its baselines.
                let block = block_nodes.max(1);
                let candidates = [
                    cags_greedy(tree, profile, block),
                    hot_dfs(tree, profile),
                    (0..tree.n_nodes() as u32).map(NodeId).collect(),
                ];
                return candidates
                    .into_iter()
                    .map(|order| Self::from_order(order, tree.n_nodes()))
                    .min_by(|a, b| {
                        let ca = a.expected_block_transitions(tree, profile, block);
                        let cb = b.expected_block_transitions(tree, profile, block);
                        ca.partial_cmp(&cb).expect("costs are finite")
                    })
                    .expect("three candidates");
            }
        };
        Self::from_order(order, tree.n_nodes())
    }

    fn from_order(order: Vec<NodeId>, n_nodes: usize) -> Self {
        debug_assert_eq!(order.len(), n_nodes);
        let mut position = vec![u32::MAX; n_nodes];
        for (k, id) in order.iter().enumerate() {
            position[id.index()] = k as u32;
        }
        debug_assert!(position.iter().all(|&p| p != u32::MAX));
        Self { order, position }
    }

    /// The node at flat position `k`.
    pub fn node_at(&self, k: usize) -> NodeId {
        self.order[k]
    }

    /// The flat position of `node`.
    pub fn position_of(&self, node: NodeId) -> u32 {
        self.position[node.index()]
    }

    /// The full permutation, in flat order.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` if the layout covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Expected number of block transitions per inference under this
    /// layout (lower is better): sums, over all parent→child edges, the
    /// probability of traversing the edge times one if parent and child
    /// land in different blocks. The metric CAGS greedily minimizes.
    pub fn expected_block_transitions(
        &self,
        tree: &DecisionTree,
        profile: &TreeProfile,
        block_nodes: usize,
    ) -> f64 {
        let block = |id: NodeId| self.position_of(id) as usize / block_nodes.max(1);
        let mut cost = 0.0;
        for (i, node) in tree.nodes().iter().enumerate() {
            let id = NodeId(i as u32);
            if let Node::Split { left, right, .. } = node {
                let reach = profile.reach_probability(id);
                let p_left = profile.left_probability(id);
                if block(id) != block(*left) {
                    cost += reach * p_left;
                }
                if block(id) != block(*right) {
                    cost += reach * (1.0 - p_left);
                }
            }
        }
        cost
    }
}

fn breadth_first(tree: &DecisionTree) -> Vec<NodeId> {
    let mut order = Vec::with_capacity(tree.n_nodes());
    let mut queue = std::collections::VecDeque::from([NodeId::ROOT]);
    while let Some(id) = queue.pop_front() {
        order.push(id);
        if let Node::Split { left, right, .. } = &tree.nodes()[id.index()] {
            queue.push_back(*left);
            queue.push_back(*right);
        }
    }
    order
}

/// Depth-first order descending into the hotter child first — the
/// "swapping" stage in isolation.
fn hot_dfs(tree: &DecisionTree, profile: &TreeProfile) -> Vec<NodeId> {
    let mut order = Vec::with_capacity(tree.n_nodes());
    let mut stack = vec![NodeId::ROOT];
    while let Some(id) = stack.pop() {
        order.push(id);
        if let Node::Split { left, right, .. } = &tree.nodes()[id.index()] {
            let p_left = profile.left_probability(id);
            // Push the colder child first so the hotter one is popped
            // next (adjacent to its parent).
            if p_left >= 0.5 {
                stack.push(*right);
                stack.push(*left);
            } else {
                stack.push(*left);
                stack.push(*right);
            }
        }
    }
    order
}

/// Greedy grouping: repeatedly seed a block with the unplaced node of
/// highest reach probability, then grow the block along the hottest
/// unplaced child edges until it is full.
fn cags_greedy(tree: &DecisionTree, profile: &TreeProfile, block_nodes: usize) -> Vec<NodeId> {
    let n = tree.n_nodes();
    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Candidate seeds sorted hottest-first, root first among ties.
    let mut seeds: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    seeds.sort_by(|a, b| {
        profile
            .reach_probability(*b)
            .partial_cmp(&profile.reach_probability(*a))
            .expect("probabilities are finite")
            .then(a.0.cmp(&b.0))
    });
    let mut seed_cursor = 0;
    while order.len() < n {
        // Next unplaced seed.
        while seed_cursor < n && placed[seeds[seed_cursor].index()] {
            seed_cursor += 1;
        }
        let mut frontier = vec![seeds[seed_cursor]];
        let mut in_block = 0;
        while in_block < block_nodes && !frontier.is_empty() {
            // Take the hottest frontier node.
            let (k, _) = frontier
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    profile
                        .reach_probability(**a)
                        .partial_cmp(&profile.reach_probability(**b))
                        .expect("probabilities are finite")
                })
                .expect("frontier non-empty");
            let id = frontier.swap_remove(k);
            if placed[id.index()] {
                continue;
            }
            placed[id.index()] = true;
            order.push(id);
            in_block += 1;
            if let Node::Split { left, right, .. } = &tree.nodes()[id.index()] {
                for child in [*left, *right] {
                    if !placed[child.index()] {
                        frontier.push(child);
                    }
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_data::Dataset;
    use flint_forest::example_tree;

    fn skewed_profile(tree: &DecisionTree) -> TreeProfile {
        // 90 % of samples go right at the root.
        let mut rows = vec![(vec![0.0f32, 0.0f32], 1u32)];
        for _ in 0..9 {
            rows.push((vec![1.0, 0.0], 2));
        }
        let data = Dataset::from_rows(2, 3, rows).expect("valid");
        TreeProfile::collect(tree, &data)
    }

    fn assert_is_permutation(layout: &TreeLayout, n: usize) {
        assert_eq!(layout.len(), n);
        let mut seen = vec![false; n];
        for k in 0..n {
            let id = layout.node_at(k);
            assert!(!seen[id.index()], "duplicate {id}");
            seen[id.index()] = true;
            assert_eq!(layout.position_of(id) as usize, k);
        }
    }

    #[test]
    fn all_strategies_produce_permutations() {
        let tree = example_tree();
        let profile = skewed_profile(&tree);
        for strategy in [
            LayoutStrategy::ArenaOrder,
            LayoutStrategy::BreadthFirst,
            LayoutStrategy::HotPathDfs,
            LayoutStrategy::Cags { block_nodes: 2 },
        ] {
            let layout = TreeLayout::compute(&tree, &profile, strategy);
            assert_is_permutation(&layout, tree.n_nodes());
        }
    }

    #[test]
    fn root_is_first_everywhere() {
        let tree = example_tree();
        let profile = skewed_profile(&tree);
        for strategy in [
            LayoutStrategy::ArenaOrder,
            LayoutStrategy::BreadthFirst,
            LayoutStrategy::HotPathDfs,
            LayoutStrategy::Cags { block_nodes: 3 },
        ] {
            let layout = TreeLayout::compute(&tree, &profile, strategy);
            assert_eq!(layout.node_at(0), NodeId::ROOT, "{strategy:?}");
        }
    }

    #[test]
    fn hot_dfs_places_hot_child_adjacent() {
        let tree = example_tree();
        let profile = skewed_profile(&tree);
        let layout = TreeLayout::compute(&tree, &profile, LayoutStrategy::HotPathDfs);
        // Root's hot child is the right leaf (NodeId(2), 90 %): it must
        // directly follow the root.
        assert_eq!(layout.node_at(1), NodeId(2));
    }

    #[test]
    fn cags_beats_arena_order_on_skewed_trees() {
        let tree = example_tree();
        let profile = skewed_profile(&tree);
        let block = 2;
        let naive = TreeLayout::compute(&tree, &profile, LayoutStrategy::ArenaOrder);
        let cags =
            TreeLayout::compute(&tree, &profile, LayoutStrategy::Cags { block_nodes: block });
        let naive_cost = naive.expected_block_transitions(&tree, &profile, block);
        let cags_cost = cags.expected_block_transitions(&tree, &profile, block);
        assert!(
            cags_cost <= naive_cost,
            "cags {cags_cost} should not exceed naive {naive_cost}"
        );
    }

    #[test]
    fn breadth_first_orders_by_level() {
        let tree = example_tree();
        let profile = TreeProfile::uniform(&tree);
        let layout = TreeLayout::compute(&tree, &profile, LayoutStrategy::BreadthFirst);
        // Level order of example_tree: 0, then {1, 2}, then {3, 4}.
        assert_eq!(layout.node_at(0), NodeId(0));
        let level1: Vec<u32> = vec![layout.node_at(1).0, layout.node_at(2).0];
        assert_eq!(level1, vec![1, 2]);
    }

    #[test]
    fn degenerate_block_sizes() {
        let tree = example_tree();
        let profile = skewed_profile(&tree);
        // block_nodes = 0 clamps to 1; giant blocks contain everything.
        for block in [0, 1, 1000] {
            let layout =
                TreeLayout::compute(&tree, &profile, LayoutStrategy::Cags { block_nodes: block });
            assert_is_permutation(&layout, tree.n_nodes());
        }
    }

    #[test]
    fn single_leaf_tree() {
        use flint_forest::{DecisionTree, Node};
        let tree = DecisionTree::new(
            vec![Node::Leaf {
                class: 0,
                counts: vec![1, 0],
            }],
            1,
            2,
        )
        .expect("valid");
        let profile = TreeProfile::uniform(&tree);
        let layout = TreeLayout::compute(&tree, &profile, LayoutStrategy::Cags { block_nodes: 4 });
        assert_eq!(layout.len(), 1);
        assert_eq!(layout.node_at(0), NodeId::ROOT);
    }
}
