//! # flint-layout — CAGS: cache-aware grouping and swapping
//!
//! The FLInt paper composes its operator with the CAGS optimization of
//! Chen et al. (TECS 2022): lay decision tree nodes out in memory
//! according to empirical branch probabilities collected on the
//! training set, so the hot path stays within few cache blocks.
//!
//! * [`profile::TreeProfile`] — visit/branch counting on training data;
//! * [`layout::TreeLayout`] — node permutations under four strategies
//!   (arena order, breadth-first, probability-swapped DFS, full CAGS
//!   greedy grouping), plus the expected-block-transition cost metric.
//!
//! The execution backends in `flint-exec` materialize their flat node
//! arrays in layout order, making the optimization physically real.
//!
//! ```
//! use flint_forest::example_tree;
//! use flint_layout::{LayoutStrategy, TreeLayout, TreeProfile};
//!
//! let tree = example_tree();
//! let profile = TreeProfile::uniform(&tree);
//! let layout = TreeLayout::compute(&tree, &profile, LayoutStrategy::Cags { block_nodes: 4 });
//! assert_eq!(layout.len(), tree.n_nodes());
//! ```
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod layout;
pub mod profile;

pub use layout::{LayoutStrategy, TreeLayout};
pub use profile::{NodeStats, TreeProfile};
