//! Empirical branch-probability profiling.
//!
//! CAGS (Chen et al., the optimization the paper composes FLInt with)
//! collects, on the *training* data, how often each node is visited and
//! how often its left branch is taken. These statistics drive the
//! swapping (put the likely branch on the fallthrough path) and
//! grouping (pack hot paths into cache blocks) stages.

use flint_data::Dataset;
use flint_forest::{DecisionTree, Node, NodeId};

/// Visit statistics of one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Number of training samples that reached this node.
    pub visits: u64,
    /// Of those, how many took the left (`<=`) branch. Zero for leaves.
    pub left_taken: u64,
}

/// Branch statistics for every node of one tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeProfile {
    stats: Vec<NodeStats>,
}

impl TreeProfile {
    /// Runs every sample of `data` through `tree`, recording visits and
    /// branch decisions.
    ///
    /// # Panics
    ///
    /// Panics if `data.n_features() != tree.n_features()`.
    pub fn collect(tree: &DecisionTree, data: &Dataset) -> Self {
        assert_eq!(
            data.n_features(),
            tree.n_features(),
            "profiling data must match the tree's feature count"
        );
        let mut stats = vec![NodeStats::default(); tree.n_nodes()];
        for (features, _) in data.iter() {
            let mut id = NodeId::ROOT;
            loop {
                stats[id.index()].visits += 1;
                match &tree.nodes()[id.index()] {
                    Node::Leaf { .. } => break,
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        if features[*feature as usize] <= *threshold {
                            stats[id.index()].left_taken += 1;
                            id = *left;
                        } else {
                            id = *right;
                        }
                    }
                }
            }
        }
        Self { stats }
    }

    /// A uniform profile (every branch 50/50) for trees without
    /// profiling data.
    pub fn uniform(tree: &DecisionTree) -> Self {
        Self {
            stats: vec![
                NodeStats {
                    visits: 0,
                    left_taken: 0,
                };
                tree.n_nodes()
            ],
        }
    }

    /// The raw statistics of `node`.
    pub fn stats(&self, node: NodeId) -> NodeStats {
        self.stats[node.index()]
    }

    /// Empirical probability that `node`'s left branch is taken, with a
    /// 0.5 fallback for nodes never visited during profiling.
    pub fn left_probability(&self, node: NodeId) -> f64 {
        let s = self.stats[node.index()];
        if s.visits == 0 {
            0.5
        } else {
            s.left_taken as f64 / s.visits as f64
        }
    }

    /// Probability that a sample reaches `node` at all (visits at the
    /// node over visits at the root; 0.0 when the root was never
    /// profiled).
    pub fn reach_probability(&self, node: NodeId) -> f64 {
        let root = self.stats[NodeId::ROOT.index()].visits;
        if root == 0 {
            0.0
        } else {
            self.stats[node.index()].visits as f64 / root as f64
        }
    }

    /// Number of nodes covered by this profile.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// `true` if the profile covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_data::Dataset;
    use flint_forest::example_tree;

    fn skewed_data() -> Dataset {
        // 9 of 10 samples go right at the root (x0 > 0.5).
        let mut rows = vec![(vec![0.0f32, 0.0f32], 1u32)];
        for _ in 0..9 {
            rows.push((vec![1.0, 0.0], 2));
        }
        Dataset::from_rows(2, 3, rows).expect("valid")
    }

    #[test]
    fn counts_visits_and_branches() {
        let tree = example_tree();
        let profile = TreeProfile::collect(&tree, &skewed_data());
        assert_eq!(profile.stats(NodeId(0)).visits, 10);
        assert_eq!(profile.stats(NodeId(0)).left_taken, 1);
        assert_eq!(profile.stats(NodeId(2)).visits, 9); // right leaf
        assert_eq!(profile.stats(NodeId(1)).visits, 1);
        assert!((profile.left_probability(NodeId(0)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn reach_probability_is_normalized() {
        let tree = example_tree();
        let profile = TreeProfile::collect(&tree, &skewed_data());
        assert_eq!(profile.reach_probability(NodeId(0)), 1.0);
        assert!((profile.reach_probability(NodeId(2)) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn unvisited_nodes_fall_back_to_half() {
        let tree = example_tree();
        let profile = TreeProfile::uniform(&tree);
        assert_eq!(profile.left_probability(NodeId(0)), 0.5);
        assert_eq!(profile.reach_probability(NodeId(1)), 0.0);
        assert_eq!(profile.len(), tree.n_nodes());
        assert!(!profile.is_empty());
    }

    #[test]
    #[should_panic(expected = "feature count")]
    fn rejects_mismatched_data() {
        let tree = example_tree();
        let data = Dataset::from_rows(3, 3, vec![(vec![0.0, 0.0, 0.0], 0)]).expect("valid");
        let _ = TreeProfile::collect(&tree, &data);
    }
}
